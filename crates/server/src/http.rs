//! The hand-rolled HTTP/1.1 subset `ldsim-server` speaks (DESIGN.md §19).
//!
//! The build environment is fully offline — no external crates resolve —
//! so the wire layer is written against `std::io` directly, and kept to
//! the minimum a farm client needs: one request per connection,
//! `Connection: close`, `Content-Length`-framed request bodies, and two
//! response shapes (a JSON object with a length, or an unbounded JSONL
//! stream whose body ends when the server closes the socket). Keeping the
//! subset this small is what makes the protocol error paths *testable*:
//! every deviation maps to exactly one named 4xx/5xx reply.

use std::io::{BufRead, BufReader, Read, Write};

/// Upper bound on the request head (request line + headers). A client
/// that has not produced a blank line by then is not speaking the subset.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Upper bound on a request body. The largest legitimate job submission
/// (every figure name, spelled out) is under 1 KiB; 1 MiB is generous
/// headroom, and anything past it earns a named `413`.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// One parsed request: method, path, and the (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub body: String,
}

/// Why a request could not be read. Each variant maps to one named HTTP
/// reply in the server's accept loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// Malformed request line, header, or framing → `400`.
    BadRequest(String),
    /// Head or body over the hard caps → `413`.
    TooLarge(String),
    /// The socket died mid-read → drop the connection, nothing to say.
    Io(String),
}

/// Read one request from `stream`. Generic over [`Read`] so the parser's
/// error paths are unit-testable against byte slices, not just sockets.
pub fn read_request<R: Read>(stream: R) -> Result<Request, RequestError> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    // Request line + headers, terminated by an empty line.
    loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| RequestError::Io(format!("read: {e}")))?;
        if n == 0 {
            return Err(RequestError::Io("connection closed mid-head".into()));
        }
        head.push_str(&line);
        if head.len() > MAX_HEAD_BYTES {
            return Err(RequestError::TooLarge(format!(
                "request head over {MAX_HEAD_BYTES} bytes"
            )));
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| RequestError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && p.starts_with('/') => (m, p, v),
        _ => {
            return Err(RequestError::BadRequest(format!(
                "malformed request line: {request_line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::BadRequest(format!(
            "unsupported protocol version: {version:?}"
        )));
    }
    let mut content_length = 0usize;
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::BadRequest(format!(
                "malformed header line: {line:?}"
            )));
        };
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.trim().parse().map_err(|_| {
                RequestError::BadRequest(format!("bad content-length: {:?}", value.trim()))
            })?;
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(RequestError::TooLarge(format!(
            "request body of {content_length} bytes over the {MAX_BODY_BYTES}-byte cap"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| RequestError::Io(format!("read body: {e}")))?;
    let body = String::from_utf8(body)
        .map_err(|_| RequestError::BadRequest("request body is not UTF-8".into()))?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

/// Write a complete JSON response (status line, headers, body) and flush.
/// Write errors are returned to the caller, who treats them as "client
/// went away" — never fatal to the server.
pub fn respond_json<W: Write>(
    stream: &mut W,
    status: u16,
    reason: &str,
    body: &str,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

/// Write the head of a streaming JSONL response. No `Content-Length`: the
/// body is over when the server closes the socket, and the framing trailer
/// (`{"done":true,...}`) is how a client distinguishes a complete stream
/// from a truncated one.
pub fn stream_head<W: Write>(stream: &mut W) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(raw: &str) -> Result<Request, RequestError> {
        read_request(raw.as_bytes())
    }

    #[test]
    fn parses_a_minimal_post() {
        let r =
            req("POST /v1/jobs HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"a\":1}").unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/v1/jobs");
        assert_eq!(r.body, "{\"a\":1}");
    }

    #[test]
    fn parses_a_get_without_body() {
        let r = req("GET /v1/health HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.body, "");
    }

    #[test]
    fn bare_lf_line_endings_are_accepted() {
        // Curl always sends CRLF, but hand-written test clients often
        // don't; the parser is liberal on input line endings.
        let r = req("GET /v1/health HTTP/1.0\n\n").unwrap();
        assert_eq!(r.path, "/v1/health");
    }

    #[test]
    fn malformed_request_lines_are_named() {
        for raw in [
            "GARBAGE\r\n\r\n",
            "GET\r\n\r\n",
            "GET /x HTTP/1.1 extra\r\n\r\n",
            "GET nopath HTTP/1.1\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
        ] {
            match req(raw) {
                Err(RequestError::BadRequest(_)) => {}
                other => panic!("{raw:?} should be BadRequest, got {other:?}"),
            }
        }
    }

    #[test]
    fn bad_content_length_is_bad_request() {
        let e = req("POST /v1/jobs HTTP/1.1\r\nContent-Length: banana\r\n\r\n").unwrap_err();
        assert!(matches!(e, RequestError::BadRequest(_)), "{e:?}");
    }

    #[test]
    fn oversized_declared_body_is_too_large() {
        let e = req(&format!(
            "POST /v1/jobs HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        ))
        .unwrap_err();
        assert!(matches!(e, RequestError::TooLarge(_)), "{e:?}");
    }

    #[test]
    fn oversized_head_is_too_large() {
        let mut raw = String::from("GET /v1/health HTTP/1.1\r\n");
        while raw.len() <= MAX_HEAD_BYTES {
            raw.push_str("X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
        }
        raw.push_str("\r\n");
        let e = req(&raw).unwrap_err();
        assert!(matches!(e, RequestError::TooLarge(_)), "{e:?}");
    }

    #[test]
    fn truncated_body_is_io_not_a_hang() {
        let e = req("POST /v1/jobs HTTP/1.1\r\nContent-Length: 10\r\n\r\n{}").unwrap_err();
        assert!(matches!(e, RequestError::Io(_)), "{e:?}");
    }

    #[test]
    fn response_writers_emit_wellformed_http() {
        let mut buf = Vec::new();
        respond_json(
            &mut buf,
            404,
            "Not Found",
            "{\"error\":\"unknown_endpoint\"}",
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Content-Length: 28\r\n"));
        assert!(text.ends_with("{\"error\":\"unknown_endpoint\"}"));
        let mut buf = Vec::new();
        stream_head(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(!text.contains("Content-Length"), "streams are unbounded");
    }
}
