//! `ldsim-server`: the sweep farm service (DESIGN.md §19).
//!
//! A long-running process that accepts sweep jobs over a hand-rolled
//! HTTP/1.1 subset ([`http`]), dedupes the submitted cells against every
//! in-flight and cached result by content-addressed cellkey ([`exec`]),
//! runs the remainder on a worker pool, and streams each figure's rendered
//! rows back as JSONL the moment its cells resolve. The disk half is the
//! same sharded cell store the `repro` binary writes
//! ([`ldsim_system::ShardMap`]), so farm results and local results are one
//! cache — byte-identical rows, one compaction policy.
//!
//! ## Endpoints
//!
//! | method & path            | reply                                        |
//! |--------------------------|----------------------------------------------|
//! | `POST /v1/jobs`          | `{"job":N,...}` or a named `4xx`/`429`       |
//! | `GET  /v1/jobs/<id>`     | `{"state":"running"\|"done"\|"failed",...}`  |
//! | `GET  /v1/jobs/<id>/stream` | JSONL: header, per-figure records, trailer |
//! | `POST /v1/compact`       | compaction stats                             |
//! | `GET  /v1/health`        | liveness + counters                          |
//!
//! Every error path answers with a named JSON error (`bad_job_json`,
//! `unknown_figure`, `over_capacity`, …) — see DESIGN.md §19 for the full
//! grammar and the framing of the stream body.

pub mod exec;
pub mod http;
pub mod wire;

pub use exec::{
    parse_scale, Exec, ExecConfig, FigureOutput, JobRequest, JobStatus, Rejection, SubmitReply,
};

use ldsim_util::JsonObject;
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

/// A running listener: the bound port (useful with `--port 0`) and the
/// exec it serves.
pub struct ServeHandle {
    pub port: u16,
    pub exec: Arc<Exec>,
}

/// Bind `127.0.0.1:port` (0 = ephemeral) and serve `exec` on a background
/// accept loop. Returns once the socket is listening — callers print the
/// "listening" line themselves so tests and the binary share this path.
pub fn spawn_server(exec: Arc<Exec>, port: u16) -> std::io::Result<ServeHandle> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let port = listener.local_addr()?.port();
    let accept_exec = exec.clone();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(stream) = conn else { continue };
            let e = accept_exec.clone();
            // Thread-per-connection: connections are few (clients, CI) and
            // the real concurrency lives in the worker pool.
            std::thread::spawn(move || handle_conn(stream, e));
        }
    });
    Ok(ServeHandle { port, exec })
}

fn error_body(name: &str, detail: &str) -> String {
    JsonObject::new()
        .str("error", name)
        .str("detail", detail)
        .build()
}

fn handle_conn(mut stream: TcpStream, exec: Arc<Exec>) {
    let req = match http::read_request(&stream) {
        Ok(r) => r,
        Err(http::RequestError::BadRequest(d)) => {
            let _ = http::respond_json(
                &mut stream,
                400,
                "Bad Request",
                &error_body("bad_request", &d),
            );
            return;
        }
        Err(http::RequestError::TooLarge(d)) => {
            let _ = http::respond_json(
                &mut stream,
                413,
                "Payload Too Large",
                &error_body("too_large", &d),
            );
            return;
        }
        // The socket died mid-request: nobody is listening for a reply.
        Err(http::RequestError::Io(_)) => return,
    };
    // Every handler returns io::Result so a vanished client unwinds this
    // connection thread cleanly without touching the worker pool.
    let _ = route(&mut stream, &exec, &req);
}

fn route(stream: &mut TcpStream, exec: &Exec, req: &http::Request) -> std::io::Result<()> {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/v1/jobs") => post_job(stream, exec, &req.body),
        ("GET", "/v1/health") => {
            let (pending, completed, failed, jobs) = exec.health();
            let body = JsonObject::new()
                .bool("ok", true)
                .u64("pending", pending as u64)
                .u64("completed", completed as u64)
                .u64("failed", failed as u64)
                .u64("jobs", jobs as u64)
                .u64("indexed_rows", exec.indexed_rows() as u64)
                .str("salt", ldsim_system::ENGINE_SALT)
                .build();
            http::respond_json(stream, 200, "OK", &body)
        }
        ("POST", "/v1/compact") => {
            let s = exec.compact();
            let body = JsonObject::new()
                .u64("rows_kept", s.rows_kept as u64)
                .u64("rows_stale", s.rows_stale as u64)
                .u64("rows_torn", s.rows_torn as u64)
                .u64("rows_superseded", s.rows_superseded as u64)
                .u64("rows_misplaced", s.rows_misplaced as u64)
                .u64("bytes_before", s.bytes_before)
                .u64("bytes_after", s.bytes_after)
                .build();
            http::respond_json(stream, 200, "OK", &body)
        }
        (method, path) => {
            if let Some(rest) = path.strip_prefix("/v1/jobs/") {
                let (id_str, is_stream) = match rest.strip_suffix("/stream") {
                    Some(id) => (id, true),
                    None => (rest, false),
                };
                let Ok(job) = id_str.parse::<u64>() else {
                    return http::respond_json(
                        stream,
                        400,
                        "Bad Request",
                        &error_body("bad_job_id", &format!("not a job id: '{id_str}'")),
                    );
                };
                if method != "GET" {
                    return method_not_allowed(stream, method, path);
                }
                if is_stream {
                    return stream_job(stream, exec, job);
                }
                return job_status(stream, exec, job);
            }
            if matches!(path, "/v1/jobs" | "/v1/health" | "/v1/compact") {
                return method_not_allowed(stream, method, path);
            }
            http::respond_json(
                stream,
                404,
                "Not Found",
                &error_body("unknown_endpoint", &format!("no endpoint at {path}")),
            )
        }
    }
}

fn method_not_allowed(stream: &mut TcpStream, method: &str, path: &str) -> std::io::Result<()> {
    http::respond_json(
        stream,
        405,
        "Method Not Allowed",
        &error_body(
            "method_not_allowed",
            &format!("{method} is not valid on {path}"),
        ),
    )
}

fn post_job(stream: &mut TcpStream, exec: &Exec, body: &str) -> std::io::Result<()> {
    let Ok(p) = ldsim_util::parse_object(body) else {
        return http::respond_json(
            stream,
            400,
            "Bad Request",
            &error_body("bad_job_json", "request body is not a flat JSON object"),
        );
    };
    let scale = match p.req_str("scale").ok().and_then(parse_scale) {
        Some(s) => s,
        None => {
            return http::respond_json(
                stream,
                400,
                "Bad Request",
                &error_body("bad_scale", "'scale' must be tiny, small, or full"),
            )
        }
    };
    let req = JobRequest {
        client: p.req_str("client").unwrap_or("anon").to_string(),
        scale,
        seed: p.req_u64("seed").unwrap_or(1),
        figures: p.req_str("figures").ok().and_then(|f| {
            let names: Vec<String> = f
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            // "all" (or an empty list) means the whole registry.
            if names.is_empty() || names == ["all"] {
                None
            } else {
                Some(names)
            }
        }),
    };
    match exec.submit(&req) {
        Ok(r) => {
            let body = JsonObject::new()
                .u64("job", r.job)
                .u64("declared", r.declared as u64)
                .u64("unique", r.unique as u64)
                .u64("cached", r.cached as u64)
                .u64("shared", r.shared as u64)
                .u64("queued", r.queued as u64)
                .build();
            http::respond_json(stream, 200, "OK", &body)
        }
        Err(rej) => {
            let (status, reason) = match rej {
                Rejection::UnknownFigure(_) => (400, "Bad Request"),
                _ => (429, "Too Many Requests"),
            };
            http::respond_json(
                stream,
                status,
                reason,
                &error_body(rej.name(), &rej.detail()),
            )
        }
    }
}

fn job_status(stream: &mut TcpStream, exec: &Exec, job: u64) -> std::io::Result<()> {
    let Some(s) = exec.status(job) else {
        return http::respond_json(
            stream,
            404,
            "Not Found",
            &error_body("unknown_job", &format!("no job {job}")),
        );
    };
    let mut b = JsonObject::new();
    b.u64("job", job)
        .str("state", s.state)
        .u64("total", s.total as u64)
        .u64("done", s.done as u64);
    if let Some(e) = &s.error {
        b.str("job_error", e);
    }
    http::respond_json(stream, 200, "OK", &b.build())
}

/// Stream a job's figures as framed JSONL (DESIGN.md §19): one header
/// record, then per figure either a `{"file":...,"rows":N}` record
/// followed by exactly N verbatim row lines or a no-file note, and a
/// `{"done":true,...}` trailer. A write error at any point means the
/// client hung up — the connection drops cleanly and the worker pool never
/// notices.
fn stream_job(stream: &mut TcpStream, exec: &Exec, job: u64) -> std::io::Result<()> {
    let Some(figures) = exec.figure_count(job) else {
        return http::respond_json(
            stream,
            404,
            "Not Found",
            &error_body("unknown_job", &format!("no job {job}")),
        );
    };
    http::stream_head(stream)?;
    let header = JsonObject::new()
        .u64("job", job)
        .u64("figures", figures as u64)
        .build();
    writeln!(stream, "{header}")?;
    let (mut files, mut rows) = (0u64, 0u64);
    for idx in 0..figures {
        // figure_count succeeded, so the job exists; per-figure None is
        // unreachable, but a vanished job must not kill the thread.
        let Some((name, output)) = exec.wait_figure(job, idx) else {
            break;
        };
        match output {
            FigureOutput::File { file, content } => {
                let n = content.lines().count() as u64;
                let rec = JsonObject::new().str("file", &file).u64("rows", n).build();
                writeln!(stream, "{rec}")?;
                stream.write_all(content.as_bytes())?;
                files += 1;
                rows += n;
            }
            FigureOutput::NoFile => {
                let rec = JsonObject::new().str("figure", name).u64("rows", 0).build();
                writeln!(stream, "{rec}")?;
            }
            FigureOutput::Failed { error } => {
                // Close without a trailer: the client reports truncation
                // with the reason in hand.
                let rec = JsonObject::new()
                    .str("error", "figure_failed")
                    .str("figure", name)
                    .str("detail", &error)
                    .build();
                writeln!(stream, "{rec}")?;
                return stream.flush();
            }
        }
        stream.flush()?;
    }
    let trailer = JsonObject::new()
        .bool("done", true)
        .u64("files", files)
        .u64("rows", rows)
        .build();
    writeln!(stream, "{trailer}")?;
    stream.flush()
}
