//! CLI error-path contract for the farm binaries, matching the workspace
//! convention pinned in `crates/bench/tests/cli_errors.rs`: usage mistakes
//! exit 2 with a named one-line `error:` on stderr followed by the usage
//! text, and never a panic backtrace.

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn {bin}: {e}"))
}

fn assert_cli_error(bin: &str, args: &[&str], names: &str) {
    let out = run(bin, args);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{bin} {args:?}: must exit via the usage path (code 2), not a panic \
         (101)\nstderr: {stderr}"
    );
    let first = stderr.lines().next().unwrap_or("");
    assert!(
        first.starts_with("error: ") && first.contains(names),
        "{bin} {args:?}: first stderr line must be a named error mentioning \
         '{names}', got: {first}"
    );
    assert!(
        stderr.contains("usage:"),
        "{bin} {args:?}: stderr must include the usage line\nstderr: {stderr}"
    );
    assert!(
        !stderr.contains("panicked at"),
        "{bin} {args:?}: raw panic leaked to the user\nstderr: {stderr}"
    );
}

#[test]
fn server_rejects_bad_arguments_with_named_errors() {
    let bin = env!("CARGO_BIN_EXE_ldsim-server");
    // Unknown flags must not be silently accepted.
    assert_cli_error(bin, &["--prot", "8080"], "--prot");
    // Flags missing their value at the end of argv.
    assert_cli_error(bin, &["--port"], "--port");
    assert_cli_error(bin, &["--cache"], "--cache");
    // Non-numeric / out-of-range values.
    assert_cli_error(bin, &["--port", "banana"], "--port");
    assert_cli_error(bin, &["--port", "99999"], "--port");
    assert_cli_error(bin, &["--shards", "0"], "--shards");
    assert_cli_error(bin, &["--shards", "8193"], "--shards");
    assert_cli_error(bin, &["--jobs", "0"], "--jobs");
    assert_cli_error(bin, &["--threads", "fast"], "--threads");
    assert_cli_error(bin, &["--max-inflight", "-3"], "--max-inflight");
    assert_cli_error(bin, &["--queue", "many"], "--queue");
}

#[test]
fn client_rejects_bad_arguments_with_named_errors() {
    let bin = env!("CARGO_BIN_EXE_ldsim-client");
    // Subcommand grammar.
    assert_cli_error(bin, &[], "subcommand");
    assert_cli_error(bin, &["pong"], "pong");
    assert_cli_error(bin, &["status"], "--job");
    assert_cli_error(bin, &["stream"], "--job");
    assert_cli_error(bin, &["status", "--job", "soon"], "--job");
    // Flag values.
    assert_cli_error(bin, &["ping", "--port"], "--port");
    assert_cli_error(bin, &["ping", "--port", "banana"], "--port");
    assert_cli_error(bin, &["ping", "--port", "0"], "--port");
    assert_cli_error(bin, &["submit", "--scale", "smol"], "--scale");
    assert_cli_error(bin, &["submit", "--seed", "eleven"], "--seed");
    assert_cli_error(bin, &["run", "--timeout", "later"], "--timeout");
    assert_cli_error(bin, &["compact", "--shards", "0"], "--shards");
    assert_cli_error(bin, &["compact", "--shards", "8193"], "--shards");
    // Unknown flags.
    assert_cli_error(bin, &["ping", "--hots", "box"], "--hots");
}

/// Runtime failures (as opposed to usage mistakes) exit 1 with a named
/// `error:` line and no usage dump — a dead server is not the caller
/// holding the tool wrong.
#[test]
fn client_runtime_failures_exit_one_without_usage() {
    let bin = env!("CARGO_BIN_EXE_ldsim-client");
    // Port 1 on loopback: connection refused, immediately.
    let out = run(bin, &["ping", "--port", "1"]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(1), "stderr: {stderr}");
    assert!(stderr.starts_with("error: "), "stderr: {stderr}");
    assert!(!stderr.contains("usage:"), "stderr: {stderr}");
    assert!(!stderr.contains("panicked at"), "stderr: {stderr}");
}
