//! End-to-end wire tests: a real `ldsim-server` exec behind a real TCP
//! listener, spoken to through the same `wire` helpers the `ldsim-client`
//! binary uses. The contract under test is the ISSUE's acceptance
//! criterion: rows streamed off the farm are byte-identical to what the
//! in-process sweep renders, and the shard store a job leaves behind
//! warm-reloads bit-exact.

use ldsim_bench::figures::registry;
use ldsim_server::{spawn_server, Exec, ExecConfig, ServeHandle};
use ldsim_system::{run_sweep, SweepConfig};
use ldsim_util::parse_object;
use ldsim_workloads::Scale;
use std::io::BufRead;
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldsim-wire-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(cache: &Path, cfg: impl FnOnce(&mut ExecConfig)) -> ServeHandle {
    let mut c = ExecConfig {
        cache_dir: cache.to_path_buf(),
        shards: 4,
        workers: 2,
        ..ExecConfig::default()
    };
    cfg(&mut c);
    spawn_server(Exec::start(c), 0).expect("bind ephemeral port")
}

fn post_job(port: u16, body: &str) -> (u16, String) {
    ldsim_server::wire::request("127.0.0.1", port, "POST", "/v1/jobs", body).unwrap()
}

/// Render the named figures exactly as `repro tiny` would: one in-process
/// sweep over the union grid (no cache), rendered into `dir`.
fn render_local(names: &[&str], dir: &Path) {
    let specs: Vec<_> = registry(Scale::Tiny, 1)
        .into_iter()
        .filter(|s| names.contains(&s.name))
        .collect();
    let cells: Vec<_> = specs.iter().flat_map(|s| s.cells.iter().copied()).collect();
    let (store, _) = run_sweep(&cells, &SweepConfig::default());
    std::fs::create_dir_all(dir).unwrap();
    for spec in &specs {
        (spec.render)(&store, dir);
    }
}

/// Demux one stream body into (file name → bytes), asserting the framing
/// (header, per-record row counts, done trailer) along the way.
fn demux(port: u16, job: u64) -> Vec<(String, String)> {
    let (status, mut reader) =
        ldsim_server::wire::open_stream("127.0.0.1", port, &format!("/v1/jobs/{job}/stream"))
            .unwrap();
    assert_eq!(status, 200);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let header = parse_object(line.trim_end()).unwrap();
    assert_eq!(header.req_u64("job").unwrap(), job);
    let mut out: Vec<(String, String)> = Vec::new();
    let (mut files, mut rows) = (0u64, 0u64);
    loop {
        line.clear();
        assert_ne!(reader.read_line(&mut line).unwrap(), 0, "truncated stream");
        let rec = parse_object(line.trim_end()).unwrap();
        if rec.req_bool("done").ok() == Some(true) {
            assert_eq!(rec.req_u64("files").unwrap(), files, "trailer file count");
            assert_eq!(rec.req_u64("rows").unwrap(), rows, "trailer row count");
            // After the trailer the server closes the connection.
            line.clear();
            assert_eq!(reader.read_line(&mut line).unwrap(), 0);
            return out;
        }
        let Ok(file) = rec.req_str("file") else {
            continue; // no-file figure note
        };
        let n = rec.req_u64("rows").unwrap();
        let mut content = String::new();
        for _ in 0..n {
            line.clear();
            assert_ne!(
                reader.read_line(&mut line).unwrap(),
                0,
                "truncated file body"
            );
            content.push_str(&line);
        }
        out.push((file.to_string(), content));
        files += 1;
        rows += n;
    }
}

#[test]
fn streamed_rows_are_byte_identical_to_the_local_render() {
    // Three figures covering the three stream shapes: a plain grid dump
    // (fig02), a no-file analytic figure (fig05), and a second dump whose
    // cells overlap fig02's (fig03 — same grid, proving dedupe).
    let names = ["fig02", "fig03", "fig05"];
    let cache = tmp("e2e");
    let srv = boot(&cache, |_| {});
    let (status, reply) = post_job(
        srv.port,
        "{\"client\":\"t\",\"scale\":\"tiny\",\"seed\":1,\"figures\":\"fig02,fig03,fig05\"}",
    );
    assert_eq!(status, 200, "{reply}");
    let r = parse_object(&reply).unwrap();
    let job = r.req_u64("job").unwrap();
    assert_eq!(
        r.req_u64("unique").unwrap(),
        r.req_u64("queued").unwrap(),
        "cold farm: every unique cell queues"
    );
    assert!(
        r.req_u64("declared").unwrap() > r.req_u64("unique").unwrap(),
        "fig02 and fig03 share their grid"
    );

    // Poll to completion over the wire (what the CI job's loop does).
    loop {
        let (s, body) = ldsim_server::wire::request(
            "127.0.0.1",
            srv.port,
            "GET",
            &format!("/v1/jobs/{job}"),
            "",
        )
        .unwrap();
        assert_eq!(s, 200);
        assert!(!body.contains("\"state\":\"failed\""), "{body}");
        if body.contains("\"state\":\"done\"") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    let streamed = demux(srv.port, job);
    let local = tmp("e2e-local");
    render_local(&names, &local);
    assert_eq!(
        streamed.len(),
        2,
        "fig02 + fig03 write files, fig05 does not"
    );
    for (file, content) in &streamed {
        let expect = std::fs::read_to_string(local.join(file)).unwrap();
        assert_eq!(
            content, &expect,
            "{file}: farm-streamed rows must be byte-identical to the local render"
        );
    }

    // Resubmitting the identical job costs nothing: all cells resolve as
    // cached, nothing queues, and the stream still matches.
    let (status, reply) = post_job(
        srv.port,
        "{\"client\":\"t2\",\"scale\":\"tiny\",\"seed\":1,\"figures\":\"fig02,fig03,fig05\"}",
    );
    assert_eq!(status, 200);
    let r = parse_object(&reply).unwrap();
    assert_eq!(r.req_u64("queued").unwrap(), 0, "{reply}");
    assert_eq!(r.req_u64("cached").unwrap(), r.req_u64("unique").unwrap());
    let again = demux(srv.port, r.req_u64("job").unwrap());
    assert_eq!(
        again, streamed,
        "warm resubmission must stream the same bytes"
    );

    // The shard store the job left behind is a valid warm sweep cache:
    // an in-process run over the same cells simulates nothing and the
    // renders agree byte-for-byte with the farm stream.
    let specs: Vec<_> = registry(Scale::Tiny, 1)
        .into_iter()
        .filter(|s| names.contains(&s.name))
        .collect();
    let cells: Vec<_> = specs.iter().flat_map(|s| s.cells.iter().copied()).collect();
    let cfg = SweepConfig {
        cache_path: Some(&cache),
        shards: 4,
        ..SweepConfig::default()
    };
    let (warm_store, stats) = run_sweep(&cells, &cfg);
    assert_eq!(stats.simulated, 0, "farm rows must warm-start the sweep");
    assert_eq!(stats.from_cache, stats.unique);
    let warm = tmp("e2e-warm");
    std::fs::create_dir_all(&warm).unwrap();
    for spec in &specs {
        (spec.render)(&warm_store, &warm);
    }
    for (file, content) in &streamed {
        let got = std::fs::read_to_string(warm.join(file)).unwrap();
        assert_eq!(&got, content, "{file}: warm reload must be byte-exact");
    }

    // A server restart over the same store indexes the rows and serves
    // the whole job from disk — no simulation.
    srv.exec.shutdown();
    let srv2 = boot(&cache, |_| {});
    assert!(srv2.exec.indexed_rows() > 0, "restart must index disk rows");
    let (status, reply) = post_job(
        srv2.port,
        "{\"client\":\"t3\",\"scale\":\"tiny\",\"seed\":1,\"figures\":\"fig02,fig03,fig05\"}",
    );
    assert_eq!(status, 200);
    let r = parse_object(&reply).unwrap();
    assert_eq!(r.req_u64("queued").unwrap(), 0, "{reply}");
    let restreamed = demux(srv2.port, r.req_u64("job").unwrap());
    assert_eq!(restreamed, streamed, "disk-served rows must match");
    srv2.exec.shutdown();

    for d in [&cache, &local, &warm] {
        let _ = std::fs::remove_dir_all(d);
    }
}

#[test]
fn health_compact_and_status_round_trip() {
    let cache = tmp("health");
    let srv = boot(&cache, |_| {});
    let (s, body) =
        ldsim_server::wire::request("127.0.0.1", srv.port, "GET", "/v1/health", "").unwrap();
    assert_eq!(s, 200);
    let h = parse_object(&body).unwrap();
    assert!(h.req_bool("ok").unwrap());
    assert_eq!(h.req_str("salt").unwrap(), ldsim_system::ENGINE_SALT);

    // fig05 declares zero cells: submit-to-done is immediate, and the
    // stream is a note plus trailer.
    let (s, reply) = post_job(srv.port, "{\"scale\":\"tiny\",\"figures\":\"fig05\"}");
    assert_eq!(s, 200, "{reply}");
    let job = parse_object(&reply).unwrap().req_u64("job").unwrap();
    let (s, body) =
        ldsim_server::wire::request("127.0.0.1", srv.port, "GET", &format!("/v1/jobs/{job}"), "")
            .unwrap();
    assert_eq!(s, 200);
    assert!(body.contains("\"state\":\"done\""), "{body}");
    assert!(body.contains("\"total\":0"), "{body}");
    assert!(demux(srv.port, job).is_empty(), "fig05 writes no file");

    // Online compaction of the (empty) store answers with stats.
    let (s, body) =
        ldsim_server::wire::request("127.0.0.1", srv.port, "POST", "/v1/compact", "").unwrap();
    assert_eq!(s, 200);
    assert!(body.contains("\"rows_kept\":0"), "{body}");
    srv.exec.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}
