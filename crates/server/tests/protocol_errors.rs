//! Error-path coverage for the wire protocol: every malformed input gets a
//! named JSON error on the right status code, rejections reclaim their
//! resources atomically, and a client vanishing mid-stream leaves the
//! worker pool and the shard store untouched.

use ldsim_server::wire::request;
use ldsim_server::{spawn_server, Exec, ExecConfig, ServeHandle};
use ldsim_system::{run_sweep, SweepConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ldsim-proto-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn boot(cache: &Path, cfg: impl FnOnce(&mut ExecConfig)) -> ServeHandle {
    let mut c = ExecConfig {
        cache_dir: cache.to_path_buf(),
        shards: 4,
        workers: 2,
        ..ExecConfig::default()
    };
    cfg(&mut c);
    spawn_server(Exec::start(c), 0).expect("bind ephemeral port")
}

/// Fire raw bytes at the server and return the whole reply, for requests
/// `wire::request` refuses to produce (malformed lines, lying lengths).
fn raw(port: u16, payload: &str) -> String {
    let mut s = TcpStream::connect(("127.0.0.1", port)).unwrap();
    s.write_all(payload.as_bytes()).unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut reply = String::new();
    s.read_to_string(&mut reply).unwrap();
    reply
}

#[test]
fn named_errors_cover_every_malformed_request() {
    let cache = tmp("named");
    let srv = boot(&cache, |_| {});
    let p = srv.port;

    // Body is not JSON → bad_job_json.
    let (s, b) = request("127.0.0.1", p, "POST", "/v1/jobs", "not json at all").unwrap();
    assert_eq!(
        (s, b.contains("\"error\":\"bad_job_json\"")),
        (400, true),
        "{b}"
    );

    // Valid JSON, invalid scale → bad_scale.
    let (s, b) = request(
        "127.0.0.1",
        p,
        "POST",
        "/v1/jobs",
        "{\"scale\":\"galactic\"}",
    )
    .unwrap();
    assert_eq!(
        (s, b.contains("\"error\":\"bad_scale\"")),
        (400, true),
        "{b}"
    );
    let (s, b) = request("127.0.0.1", p, "POST", "/v1/jobs", "{}").unwrap();
    assert_eq!(
        (s, b.contains("\"error\":\"bad_scale\"")),
        (400, true),
        "{b}"
    );

    // Unknown figure name → unknown_figure, and nothing was enqueued.
    let (s, b) = request(
        "127.0.0.1",
        p,
        "POST",
        "/v1/jobs",
        "{\"scale\":\"tiny\",\"figures\":\"fig02,fig99\"}",
    )
    .unwrap();
    assert_eq!(
        (s, b.contains("\"error\":\"unknown_figure\"")),
        (400, true),
        "{b}"
    );
    assert!(b.contains("fig99"), "detail names the bad figure: {b}");
    let (_, h) = request("127.0.0.1", p, "GET", "/v1/health", "").unwrap();
    assert!(
        h.contains("\"pending\":0"),
        "rejected submit must enqueue nothing: {h}"
    );

    // Unknown endpoint → unknown_endpoint; known path, wrong method → 405.
    let (s, b) = request("127.0.0.1", p, "GET", "/v2/jobs", "").unwrap();
    assert_eq!(
        (s, b.contains("\"error\":\"unknown_endpoint\"")),
        (404, true),
        "{b}"
    );
    let (s, b) = request("127.0.0.1", p, "DELETE", "/v1/health", "").unwrap();
    assert_eq!(
        (s, b.contains("\"error\":\"method_not_allowed\"")),
        (405, true),
        "{b}"
    );
    let (s, b) = request("127.0.0.1", p, "POST", "/v1/jobs/7/stream", "").unwrap();
    assert_eq!(
        (s, b.contains("\"error\":\"method_not_allowed\"")),
        (405, true),
        "{b}"
    );

    // Job ids: non-numeric → bad_job_id; numeric but unknown → unknown_job.
    let (s, b) = request("127.0.0.1", p, "GET", "/v1/jobs/banana", "").unwrap();
    assert_eq!(
        (s, b.contains("\"error\":\"bad_job_id\"")),
        (400, true),
        "{b}"
    );
    let (s, b) = request("127.0.0.1", p, "GET", "/v1/jobs/424242", "").unwrap();
    assert_eq!(
        (s, b.contains("\"error\":\"unknown_job\"")),
        (404, true),
        "{b}"
    );
    let (s, b) = request("127.0.0.1", p, "GET", "/v1/jobs/424242/stream", "").unwrap();
    assert_eq!(
        (s, b.contains("\"error\":\"unknown_job\"")),
        (404, true),
        "{b}"
    );

    // A Content-Length over the cap is refused before the body is read.
    let reply = raw(
        p,
        "POST /v1/jobs HTTP/1.1\r\nContent-Length: 104857600\r\n\r\n",
    );
    assert!(reply.starts_with("HTTP/1.1 413"), "{reply}");
    assert!(reply.contains("\"error\":\"too_large\""), "{reply}");

    // A garbage request line is a named 400, not a hang or a crash.
    let reply = raw(p, "TOTAL GARBAGE\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 400"), "{reply}");
    assert!(reply.contains("\"error\":\"bad_request\""), "{reply}");

    // And after all of that abuse the server still serves.
    let (s, h) = request("127.0.0.1", p, "GET", "/v1/health", "").unwrap();
    assert_eq!(s, 200);
    assert!(h.contains("\"ok\":true"), "{h}");
    srv.exec.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn capacity_rejections_are_atomic_and_named() {
    // max_inflight 1: fig02's multi-cell grid trips the global cap on the
    // very first submit, before anything is committed.
    let cache = tmp("cap");
    let srv = boot(&cache, |c| c.max_inflight = 1);
    let (s, b) = request(
        "127.0.0.1",
        srv.port,
        "POST",
        "/v1/jobs",
        "{\"scale\":\"tiny\",\"figures\":\"fig02\"}",
    )
    .unwrap();
    assert_eq!(
        (s, b.contains("\"error\":\"over_capacity\"")),
        (429, true),
        "{b}"
    );
    let (_, h) = request("127.0.0.1", srv.port, "GET", "/v1/health", "").unwrap();
    assert!(
        h.contains("\"pending\":0"),
        "rejection must commit nothing: {h}"
    );
    assert!(h.contains("\"jobs\":0"), "no job record either: {h}");
    srv.exec.shutdown();
    let _ = std::fs::remove_dir_all(&cache);

    // queue_cap 1 with a roomy global cap: the per-client queue rejects
    // instead, with its own name.
    let cache = tmp("queue");
    let srv = boot(&cache, |c| c.queue_cap = 1);
    let (s, b) = request(
        "127.0.0.1",
        srv.port,
        "POST",
        "/v1/jobs",
        "{\"client\":\"greedy\",\"scale\":\"tiny\",\"figures\":\"fig02\"}",
    )
    .unwrap();
    assert_eq!(
        (s, b.contains("\"error\":\"client_queue_full\"")),
        (429, true),
        "{b}"
    );
    assert!(b.contains("greedy"), "detail names the client: {b}");
    srv.exec.shutdown();
    let _ = std::fs::remove_dir_all(&cache);
}

#[test]
fn client_disconnect_mid_stream_leaves_the_farm_healthy() {
    let cache = tmp("hangup");
    let srv = boot(&cache, |_| {});
    let p = srv.port;
    let (s, reply) = request(
        "127.0.0.1",
        p,
        "POST",
        "/v1/jobs",
        "{\"scale\":\"tiny\",\"figures\":\"fig02\"}",
    )
    .unwrap();
    assert_eq!(s, 200, "{reply}");
    let job = ldsim_util::parse_object(&reply)
        .unwrap()
        .req_u64("job")
        .unwrap();

    // Open the stream, read only the header, then hang up while the
    // workers are still busy.
    {
        let (s, mut reader) =
            ldsim_server::wire::open_stream("127.0.0.1", p, &format!("/v1/jobs/{job}/stream"))
                .unwrap();
        assert_eq!(s, 200);
        let mut line = String::new();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        assert!(line.contains("\"job\""), "{line}");
    } // dropped: TCP reset mid-stream

    // The farm shrugs: the job still runs to completion and a second
    // stream delivers the full framed body.
    loop {
        let (s, body) = request("127.0.0.1", p, "GET", &format!("/v1/jobs/{job}"), "").unwrap();
        assert_eq!(s, 200);
        assert!(!body.contains("\"state\":\"failed\""), "{body}");
        if body.contains("\"state\":\"done\"") {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let (s, mut reader) =
        ldsim_server::wire::open_stream("127.0.0.1", p, &format!("/v1/jobs/{job}/stream")).unwrap();
    assert_eq!(s, 200);
    let mut body = String::new();
    reader.read_to_string(&mut body).unwrap();
    assert!(
        body.trim_end()
            .lines()
            .last()
            .unwrap()
            .contains("\"done\":true"),
        "{body}"
    );
    srv.exec.shutdown();

    // The shard store the interrupted job wrote is intact: a warm
    // in-process sweep over the same cells simulates nothing.
    let specs: Vec<_> = ldsim_bench::figures::registry(ldsim_workloads::Scale::Tiny, 1)
        .into_iter()
        .filter(|f| f.name == "fig02")
        .collect();
    let cells: Vec<_> = specs.iter().flat_map(|f| f.cells.iter().copied()).collect();
    let cfg = SweepConfig {
        cache_path: Some(&cache),
        shards: 4,
        ..SweepConfig::default()
    };
    let (_, stats) = run_sweep(&cells, &cfg);
    assert_eq!(
        stats.simulated, 0,
        "store must be uncorrupted after the hangup"
    );
    assert_eq!(stats.from_cache, stats.unique);
    let _ = std::fs::remove_dir_all(&cache);
}
