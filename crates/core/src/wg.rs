//! The warp-group transaction scheduler (WG / WG-M / WG-Bw / WG-W).
//!
//! Replaces the baseline's Row Sorter with the **Warp Sorter** of Fig. 6:
//! pending read requests are grouped by warp-group; among *fully arrived*
//! groups, the Bank-Table shortest-job-first rule picks the group with the
//! lowest completion score, and the group is then drained as a unit (one
//! request per cycle into the command queues).
//!
//! Optional features layer the paper's refinements on top — see the crate
//! docs for the scheme/feature matrix.

use crate::score::{group_score, GroupScore};
use ldsim_memctrl::{CoordMsg, Policy, PolicyView};
use ldsim_types::clock::Cycle;
use ldsim_types::config::{MemConfig, SchedulerKind};
use ldsim_types::ids::WarpGroupId;
use ldsim_types::req::MemRequest;
use ldsim_util::{FnvHashMap, FnvHashSet};
use std::collections::BTreeMap;

/// Which of the paper's refinements are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WgFlags {
    /// WG-M: accept/emit score-coordination messages (Section IV-C).
    pub coordinate: bool,
    /// WG-Bw: MERB-gated row-miss insertion (Section IV-D).
    pub merb: bool,
    /// WG-W: pre-drain priority for unit warp-groups (Section IV-E).
    pub write_aware: bool,
    /// WG-S: prefer warp-groups whose lines are shared by multiple warps —
    /// the future-work extension of Section VIII.
    pub shared_aware: bool,
}

impl WgFlags {
    pub fn for_kind(kind: SchedulerKind) -> Option<(Self, &'static str)> {
        match kind {
            SchedulerKind::Wg => Some((
                WgFlags {
                    coordinate: false,
                    merb: false,
                    write_aware: false,
                    shared_aware: false,
                },
                "WG",
            )),
            SchedulerKind::WgM => Some((
                WgFlags {
                    coordinate: true,
                    merb: false,
                    write_aware: false,
                    shared_aware: false,
                },
                "WG-M",
            )),
            SchedulerKind::WgBw => Some((
                WgFlags {
                    coordinate: true,
                    merb: true,
                    write_aware: false,
                    shared_aware: false,
                },
                "WG-Bw",
            )),
            SchedulerKind::WgW => Some((
                WgFlags {
                    coordinate: true,
                    merb: true,
                    write_aware: true,
                    shared_aware: false,
                },
                "WG-W",
            )),
            SchedulerKind::WgShared => Some((
                WgFlags {
                    coordinate: true,
                    merb: true,
                    write_aware: true,
                    shared_aware: true,
                },
                "WG-S",
            )),
            _ => None,
        }
    }
}

/// One warp-group's waiting requests.
#[derive(Debug, Default)]
struct GroupEntry {
    reqs: Vec<MemRequest>,
    /// Arrival order of the group's first request (final tie-breaker,
    /// guaranteeing forward progress). Immutable for the group's lifetime
    /// and unique across live groups — the seq-keyed indexes below rely on
    /// both properties.
    seq: u64,
    /// Cycle the group's first request arrived (starvation guard).
    first_arrival: Cycle,
}

/// Pending requests for one `(bank, row)` pair, indexed for the MERB gate
/// (DESIGN.md §13): total count (orphan control needs it) plus, per holding
/// group, the group's seq and its share of the count — so "oldest group with
/// a pending hit on this row" is the first key of `by_seq` instead of a scan
/// over every group's request list.
#[derive(Debug, Default, Clone)]
struct RowTally {
    count: u32,
    by_seq: BTreeMap<u64, (WarpGroupId, u32)>,
}

/// The warp-aware transaction scheduler.
pub struct WarpGroupPolicy {
    flags: WgFlags,
    name: &'static str,
    /// Starvation guard: a group whose first request has waited longer than
    /// this is force-prioritised (the same liveness rule the GMC baseline
    /// applies; plain SJF would starve large warp-groups indefinitely).
    age_threshold: Cycle,
    groups: FnvHashMap<WarpGroupId, GroupEntry>,
    /// Requests pending per bank.
    bank_count: Vec<usize>,
    total: usize,
    seq: u64,
    /// Group currently being drained as a unit.
    active: Option<WarpGroupId>,
    /// Lowest remote completion score received per group (WG-M): the local
    /// score is capped at this value, prioritising warps already serviced
    /// elsewhere.
    remote_cap: FnvHashMap<WarpGroupId, u32>,
    coord_out: Vec<CoordMsg>,
    /// Scratch for score computation (see [`group_score`]).
    scratch: Vec<u32>,
    /// Every live group, ordered by `seq` (incremental index, DESIGN.md
    /// §13): the starvation guard, the partial-group fallback and the
    /// bypass candidate walk all read oldest-first from here instead of
    /// scanning + sorting the group map.
    by_seq: BTreeMap<u64, WarpGroupId>,
    /// Live groups with exactly one pending request, ordered by `seq`
    /// (WG-W's unit-group pre-drain pick).
    unit_by_seq: BTreeMap<u64, WarpGroupId>,
    /// Per bank: row → pending-request tally (the MERB gate's index).
    row_tally: Vec<FnvHashMap<u32, RowTally>>,
    /// Route picks through the original scan-based implementations instead
    /// of the indexes — the differential-testing escape hatch. The indexes
    /// are still maintained; they are just not consulted.
    reference_picks: bool,
    /// Reusable pick-path scratch (avoids per-pick allocation).
    scratch_ids: Vec<WarpGroupId>,
    scratch_scored: Vec<(GroupScore, WarpGroupId)>,
    /// Stats: MERB substitutions performed (row-hits inserted before a
    /// gated row-miss).
    pub merb_substitutions: u64,
    /// Stats: unit-group priority grants under imminent drain.
    pub wgw_priority_grants: u64,
    /// Stats: groups selected by the SJF rule.
    pub groups_selected: u64,
    /// Stats: coordination messages that lowered a local score.
    pub coord_cap_applied: u64,
    /// Groups flagged as shared by multiple warps (WG-S, Section VIII).
    shared: FnvHashSet<WarpGroupId>,
    /// Stats: selections where sharing broke the tie.
    pub shared_promotions: u64,
}

impl WarpGroupPolicy {
    pub fn new(flags: WgFlags, name: &'static str, num_banks: usize) -> Self {
        Self::with_age_threshold(flags, name, num_banks, 12_000)
    }

    /// Construct with an explicit starvation threshold (cycles).
    pub fn with_age_threshold(
        flags: WgFlags,
        name: &'static str,
        num_banks: usize,
        age_threshold: Cycle,
    ) -> Self {
        Self {
            flags,
            name,
            age_threshold,
            groups: FnvHashMap::default(),
            bank_count: vec![0; num_banks],
            total: 0,
            seq: 0,
            active: None,
            remote_cap: FnvHashMap::default(),
            coord_out: Vec::new(),
            scratch: vec![0; num_banks.max(48)],
            merb_substitutions: 0,
            wgw_priority_grants: 0,
            groups_selected: 0,
            coord_cap_applied: 0,
            shared: FnvHashSet::default(),
            shared_promotions: 0,
            by_seq: BTreeMap::new(),
            unit_by_seq: BTreeMap::new(),
            row_tally: vec![FnvHashMap::default(); num_banks],
            reference_picks: false,
            scratch_ids: Vec::new(),
            scratch_scored: Vec::new(),
        }
    }

    pub fn flags(&self) -> WgFlags {
        self.flags
    }

    /// Route picks through the original scan-based paths (differential
    /// testing only — see DESIGN.md §13).
    pub fn set_reference_picks(&mut self, on: bool) {
        self.reference_picks = on;
    }

    /// Internal invariant check (tests): the incremental indexes must
    /// describe exactly the same pending state as the group map.
    #[cfg(test)]
    fn check_index_invariants(&self) {
        assert_eq!(self.by_seq.len(), self.groups.len());
        for (seq, wg) in &self.by_seq {
            assert_eq!(self.groups[wg].seq, *seq);
        }
        for (seq, wg) in &self.unit_by_seq {
            assert_eq!(self.groups[wg].reqs.len(), 1, "unit index stale");
            assert_eq!(self.groups[wg].seq, *seq);
        }
        for (wg, e) in &self.groups {
            if e.reqs.len() == 1 {
                assert_eq!(self.unit_by_seq.get(&e.seq), Some(wg));
            }
        }
        let mut want: std::collections::BTreeMap<(usize, u32, u64), u32> = Default::default();
        for (wg, e) in &self.groups {
            for r in &e.reqs {
                *want
                    .entry((r.decoded.bank.0 as usize, r.decoded.row, e.seq))
                    .or_insert(0) += 1;
                assert_eq!(
                    self.row_tally[r.decoded.bank.0 as usize]
                        .get(&r.decoded.row)
                        .and_then(|t| t.by_seq.get(&e.seq))
                        .map(|(w, _)| w),
                    Some(wg)
                );
            }
        }
        let mut have = 0usize;
        for (b, per_row) in self.row_tally.iter().enumerate() {
            for (row, t) in per_row {
                assert!(t.count > 0, "empty tally retained");
                let mut sum = 0;
                for (seq, (_, c)) in &t.by_seq {
                    assert!(*c > 0);
                    assert_eq!(want.get(&(b, *row, *seq)), Some(c));
                    sum += c;
                }
                assert_eq!(t.count, sum);
                have += t.by_seq.len();
            }
        }
        assert_eq!(have, want.len());
    }

    fn take_req(&mut self, wg: WarpGroupId, idx: usize) -> MemRequest {
        let entry = self.groups.get_mut(&wg).expect("group exists");
        let seq = entry.seq;
        let r = entry.reqs.swap_remove(idx);
        let left = entry.reqs.len();
        self.bank_count[r.decoded.bank.0 as usize] -= 1;
        self.total -= 1;
        self.untally(&r, seq);
        match left {
            0 => {
                self.groups.remove(&wg);
                self.remote_cap.remove(&wg);
                self.shared.remove(&wg);
                self.by_seq.remove(&seq);
                self.unit_by_seq.remove(&seq);
                if self.active == Some(wg) {
                    self.active = None;
                }
            }
            1 => {
                self.unit_by_seq.insert(seq, wg);
            }
            _ => {}
        }
        r
    }

    /// Remove one request's contribution from its `(bank, row)` tally.
    fn untally(&mut self, r: &MemRequest, seq: u64) {
        let per_row = &mut self.row_tally[r.decoded.bank.0 as usize];
        let t = per_row
            .get_mut(&r.decoded.row)
            .expect("tally exists for pending request");
        t.count -= 1;
        if t.count == 0 {
            per_row.remove(&r.decoded.row);
            return;
        }
        let c = t.by_seq.get_mut(&seq).expect("group share exists");
        c.1 -= 1;
        if c.1 == 0 {
            t.by_seq.remove(&seq);
        }
    }

    /// Effective score of a group: Bank-Table score, capped by the best
    /// remote score received for it (WG-M). The boolean says whether the
    /// cap engaged — capped groups (already in service at another
    /// controller) win score ties, finishing the warp instead of starting
    /// a new one (the intent of Section IV-C).
    fn effective_score(&mut self, wg: WarpGroupId, view: &PolicyView<'_>) -> (GroupScore, bool) {
        let entry = &self.groups[&wg];
        let mut s = group_score(&entry.reqs, view, &mut self.scratch);
        let mut capped = false;
        if self.flags.coordinate {
            if let Some(&cap) = self.remote_cap.get(&wg) {
                if cap < s.score {
                    s.score = cap;
                    capped = true;
                    self.coord_cap_applied += 1;
                }
            }
        }
        (s, capped)
    }

    /// Select the best complete group by bank-aware SJF; fall back to the
    /// oldest group if none is complete (prevents queue-full livelock).
    ///
    /// Every complete group is scored (never short-circuited): the score
    /// evaluation has an observable side effect — `coord_cap_applied`
    /// counts every engagement of the WG-M remote cap, and that counter is
    /// part of `RunResult` — so the candidate *set* is bit-exactness
    /// contract, not an implementation detail. The selection itself is a
    /// strict total order ending in the unique `seq`, so evaluation order
    /// cannot change the winner.
    fn select_group(&mut self, view: &PolicyView<'_>) -> Option<WarpGroupId> {
        // Ordering: lowest score; ties -> shared groups (WG-S), then
        // remotely-started groups, then most row hits, then oldest.
        let mut best: Option<(GroupScore, bool, bool, u64, WarpGroupId)> = None;
        let mut ids = std::mem::take(&mut self.scratch_ids);
        ids.clear();
        if self.reference_picks {
            ids.extend(
                self.groups
                    .iter()
                    .filter(|(wg, _)| view.groups.is_complete(**wg))
                    .map(|(wg, _)| *wg),
            );
        } else {
            ids.extend(
                self.by_seq
                    .values()
                    .filter(|wg| view.groups.is_complete(**wg)),
            );
        }
        for &wg in &ids {
            let seq = self.groups[&wg].seq;
            let (s, capped) = self.effective_score(wg, view);
            let shared = self.flags.shared_aware && self.shared.contains(&wg);
            let better = match &best {
                None => true,
                Some((bs, bshared, bcap, bseq, _)) => {
                    if s.score != bs.score {
                        s.score < bs.score
                    } else if shared != *bshared {
                        shared
                    } else if capped != *bcap {
                        capped
                    } else if s.hits != bs.hits {
                        s.hits > bs.hits
                    } else {
                        seq < *bseq
                    }
                }
            };
            if better {
                best = Some((s, shared, capped, seq, wg));
            }
        }
        self.scratch_ids = ids;
        if let Some((score, shared, _, _, wg)) = best {
            if shared {
                self.shared_promotions += 1;
            }
            self.groups_selected += 1;
            if self.flags.coordinate {
                self.coord_out.push(CoordMsg {
                    wg,
                    score: score.score,
                });
            }
            return Some(wg);
        }
        // No complete group: fall back to the oldest partial group so the
        // read queue cannot clog with fragments.
        if self.reference_picks {
            self.groups
                .iter()
                .min_by_key(|(_, e)| e.seq)
                .map(|(wg, _)| *wg)
        } else {
            self.by_seq.values().next().copied()
        }
    }

    /// Pick the next request *within* the active group: row hits first
    /// (they stream immediately), then the miss on the least-loaded bank.
    fn pick_from_group(&mut self, wg: WarpGroupId, view: &PolicyView<'_>) -> Option<MemRequest> {
        let entry = self.groups.get(&wg)?;
        let mut best: Option<(u32, usize)> = None;
        for (i, r) in entry.reqs.iter().enumerate() {
            if !view.headroom_ok(&r.decoded) {
                continue;
            }
            let s = view.request_score(&r.decoded);
            if best.map(|(bs, _)| s < bs).unwrap_or(true) {
                best = Some((s, i));
            }
        }
        let (_, idx) = best?;
        // WG-Bw: if the chosen request is a row-miss, the MERB gate may
        // substitute a row-hit from another group on the same bank.
        if self.flags.merb {
            let d = entry.reqs[idx].decoded;
            if !view.is_hit(&d) {
                let gate = if self.reference_picks {
                    self.merb_gate_reference(d.bank.0 as usize, view)
                } else {
                    self.merb_gate(d.bank.0 as usize, view)
                };
                if let Some((owg, oidx)) = gate {
                    self.merb_substitutions += 1;
                    return Some(self.take_req(owg, oidx));
                }
            }
        }
        Some(self.take_req(wg, idx))
    }

    /// The MERB gate (Section IV-D): a row-miss on `bank` must wait while
    /// the bank's row-hit counter is below MERB(banks-with-work) and row
    /// hits for the bank's open row are still pending — and, per the orphan
    /// control rule, while only one or two such hits remain even after the
    /// threshold is met. Returns the oldest substitute hit to schedule.
    ///
    /// Indexed: the `(bank, open-row)` tally answers "how many pending hits"
    /// and "which group is oldest" in one map lookup; only the oldest
    /// group's request list is then scanned for the substitute's position —
    /// the *first* matching index, the same within-group order the reference
    /// scan produces.
    fn merb_gate(&self, bank: usize, view: &PolicyView<'_>) -> Option<(WarpGroupId, usize)> {
        let snap = &view.banks[bank];
        let open_row = snap.last_scheduled_row?;
        let t = self.row_tally[bank].get(&open_row)?;
        debug_assert!(t.count > 0);
        let banks_with_work = view.banks_with_work(|b| self.bank_count[b] > 0);
        let threshold = view.merb.get(banks_with_work);
        let gate_closed = snap.hits_since_row_open < threshold;
        // Orphan control: never strand one or two row-hits behind a miss.
        let orphan = t.count <= 2;
        if gate_closed || orphan {
            let (_, &(wg, _)) = t.by_seq.first_key_value().expect("non-empty tally");
            let e = &self.groups[&wg];
            let i = e
                .reqs
                .iter()
                .position(|r| r.decoded.bank.0 as usize == bank && r.decoded.row == open_row)
                .expect("tallied request present in group");
            if view.headroom_ok(&e.reqs[i].decoded) {
                return Some((wg, i));
            }
        }
        None
    }

    /// Original scan-based MERB gate (kept for `reference_picks`
    /// differential testing; must stay behaviourally identical to
    /// [`Self::merb_gate`]).
    fn merb_gate_reference(
        &self,
        bank: usize,
        view: &PolicyView<'_>,
    ) -> Option<(WarpGroupId, usize)> {
        let snap = &view.banks[bank];
        let open_row = snap.last_scheduled_row?;
        // Find pending row-hits for this bank's open row across all groups.
        let mut oldest: Option<(u64, WarpGroupId, usize)> = None;
        let mut count = 0usize;
        for (wg, e) in self.groups.iter() {
            for (i, r) in e.reqs.iter().enumerate() {
                if r.decoded.bank.0 as usize == bank && r.decoded.row == open_row {
                    count += 1;
                    if oldest.map(|(s, _, _)| e.seq < s).unwrap_or(true) {
                        oldest = Some((e.seq, *wg, i));
                    }
                }
            }
        }
        if count == 0 {
            return None;
        }
        let banks_with_work = view.banks_with_work(|b| self.bank_count[b] > 0);
        let threshold = view.merb.get(banks_with_work);
        let gate_closed = snap.hits_since_row_open < threshold;
        let orphan = count <= 2;
        if gate_closed || orphan {
            let (_, wg, i) = oldest.unwrap();
            if view.headroom_ok(&self.groups[&wg].reqs[i].decoded) {
                return Some((wg, i));
            }
        }
        None
    }

    /// The active group cannot schedule anything (its banks' command queues
    /// are full). Pull one schedulable request from the lowest-score other
    /// group rather than idling banks.
    ///
    /// Candidate order: complete non-active groups (incomplete ones only
    /// when no complete group exists — the tie-break the
    /// `bypass_prefers_complete_groups_over_better_scored_incomplete` test
    /// pins), best score first, seq as the stable tie-break. Like
    /// [`Self::select_group`], every candidate is scored — the WG-M cap
    /// counter makes the candidate set observable — but the indexed path
    /// walks `by_seq` (already oldest-first, so the pre-sort disappears)
    /// and reuses the two scratch buffers instead of allocating per pick.
    fn pick_bypass(&mut self, view: &PolicyView<'_>) -> Option<MemRequest> {
        let active = self.active;
        let mut ids = std::mem::take(&mut self.scratch_ids);
        ids.clear();
        ids.extend(
            self.by_seq
                .values()
                .filter(|wg| Some(**wg) != active && view.groups.is_complete(**wg)),
        );
        if ids.is_empty() {
            ids.extend(self.by_seq.values().filter(|wg| Some(**wg) != active));
        }
        // `by_seq` iterates oldest-first: `ids` is already seq-sorted.
        let mut scored = std::mem::take(&mut self.scratch_scored);
        scored.clear();
        for &wg in &ids {
            let s = self.effective_score(wg, view).0;
            scored.push((s, wg));
        }
        // Stable sort: within equal scores the seq order above survives.
        scored.sort_by(|a, b| {
            if a.0.better_than(&b.0) {
                std::cmp::Ordering::Less
            } else if b.0.better_than(&a.0) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        let mut found: Option<(WarpGroupId, usize)> = None;
        for &(_, wg) in scored.iter() {
            let entry = &self.groups[&wg];
            let mut best: Option<(u32, usize)> = None;
            for (i, r) in entry.reqs.iter().enumerate() {
                if !view.headroom_ok(&r.decoded) {
                    continue;
                }
                let s = view.request_score(&r.decoded);
                if best.map(|(bs, _)| s < bs).unwrap_or(true) {
                    best = Some((s, i));
                }
            }
            if let Some((_, idx)) = best {
                found = Some((wg, idx));
                break;
            }
        }
        self.scratch_ids = ids;
        self.scratch_scored = scored;
        found.map(|(wg, idx)| self.take_req(wg, idx))
    }

    /// Original allocating scan-and-sort bypass (kept for `reference_picks`
    /// differential testing; must stay behaviourally identical to
    /// [`Self::pick_bypass`]).
    fn pick_bypass_reference(&mut self, view: &PolicyView<'_>) -> Option<MemRequest> {
        let active = self.active;
        let mut ids: Vec<WarpGroupId> = self
            .groups
            .iter()
            .filter(|(wg, _)| Some(**wg) != active && view.groups.is_complete(**wg))
            .map(|(wg, _)| *wg)
            .collect();
        if ids.is_empty() {
            ids = self
                .groups
                .keys()
                .filter(|wg| Some(**wg) != active)
                .copied()
                .collect();
        }
        ids.sort_unstable_by_key(|wg| self.groups[wg].seq);
        let mut scored: Vec<(GroupScore, WarpGroupId)> = ids
            .into_iter()
            .map(|wg| (self.effective_score(wg, view).0, wg))
            .collect();
        scored.sort_by(|a, b| {
            if a.0.better_than(&b.0) {
                std::cmp::Ordering::Less
            } else if b.0.better_than(&a.0) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        for (_, wg) in scored {
            let entry = &self.groups[&wg];
            let mut best: Option<(u32, usize)> = None;
            for (i, r) in entry.reqs.iter().enumerate() {
                if !view.headroom_ok(&r.decoded) {
                    continue;
                }
                let s = view.request_score(&r.decoded);
                if best.map(|(bs, _)| s < bs).unwrap_or(true) {
                    best = Some((s, i));
                }
            }
            if let Some((_, idx)) = best {
                return Some(self.take_req(wg, idx));
            }
        }
        None
    }

    /// WG-W (Section IV-E): under an imminent write drain, service groups
    /// with exactly one outstanding request first, regardless of score.
    ///
    /// Indexed: `unit_by_seq` holds exactly the single-request groups in
    /// seq order, so the oldest eligible one is the first entry passing the
    /// completeness + headroom filters (both seq-independent — iterating
    /// ascending and stopping at the first pass equals the reference's
    /// min-over-all).
    fn pick_unit_group(&mut self, view: &PolicyView<'_>) -> Option<MemRequest> {
        let mut found: Option<WarpGroupId> = None;
        for (_, &wg) in self.unit_by_seq.iter() {
            let e = &self.groups[&wg];
            debug_assert_eq!(e.reqs.len(), 1);
            if view.groups.is_complete(wg) && view.headroom_ok(&e.reqs[0].decoded) {
                found = Some(wg);
                break;
            }
        }
        let wg = found?;
        self.wgw_priority_grants += 1;
        Some(self.take_req(wg, 0))
    }

    /// Original scan-based unit-group pick (kept for `reference_picks`
    /// differential testing; must stay behaviourally identical to
    /// [`Self::pick_unit_group`]).
    fn pick_unit_group_reference(&mut self, view: &PolicyView<'_>) -> Option<MemRequest> {
        let mut best: Option<(u64, WarpGroupId)> = None;
        for (wg, e) in self.groups.iter() {
            if e.reqs.len() == 1
                && view.groups.is_complete(*wg)
                && view.headroom_ok(&e.reqs[0].decoded)
                && best.map(|(s, _)| e.seq < s).unwrap_or(true)
            {
                best = Some((e.seq, *wg));
            }
        }
        let (_, wg) = best?;
        self.wgw_priority_grants += 1;
        Some(self.take_req(wg, 0))
    }
}

impl Policy for WarpGroupPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_arrival(&mut self, req: MemRequest, now: Cycle) {
        let bank = req.decoded.bank.0 as usize;
        let row = req.decoded.row;
        let wg = req.wg;
        self.bank_count[bank] += 1;
        self.total += 1;
        let seq = self.seq;
        let entry = self.groups.entry(wg).or_insert_with(|| GroupEntry {
            reqs: Vec::with_capacity(4),
            seq,
            first_arrival: now,
        });
        if entry.reqs.is_empty() {
            entry.seq = entry.seq.min(seq);
        }
        let gseq = entry.seq;
        entry.reqs.push(req);
        match entry.reqs.len() {
            1 => {
                self.by_seq.insert(gseq, wg);
                self.unit_by_seq.insert(gseq, wg);
            }
            2 => {
                self.unit_by_seq.remove(&gseq);
            }
            _ => {}
        }
        let t = self.row_tally[bank].entry(row).or_default();
        t.count += 1;
        t.by_seq.entry(gseq).or_insert((wg, 0)).1 += 1;
        self.seq += 1;
    }

    fn pending(&self) -> usize {
        self.total
    }

    fn pick(&mut self, view: &PolicyView<'_>) -> Option<MemRequest> {
        if self.total == 0 {
            return None;
        }
        // Starvation guard: the oldest group past the age threshold
        // pre-empts the SJF order (and the active group). Indexed: `seq`
        // order is creation order and `first_arrival` is nondecreasing in
        // it, so the oldest group (first `by_seq` entry) is the *only* one
        // that can exceed the threshold first — one lookup replaces the
        // filtered min-scan.
        let aged = if self.reference_picks {
            self.groups
                .iter()
                .filter(|(_, e)| view.now.saturating_sub(e.first_arrival) > self.age_threshold)
                .min_by_key(|(_, e)| e.seq)
                .map(|(wg, _)| *wg)
        } else {
            self.by_seq.values().next().copied().filter(|wg| {
                view.now.saturating_sub(self.groups[wg].first_arrival) > self.age_threshold
            })
        };
        if let Some(wg) = aged {
            self.active = Some(wg);
            if let Some(r) = self.pick_from_group(wg, view) {
                return Some(r);
            }
        }
        // WG-W pre-drain hook.
        if self.flags.write_aware && view.drain_imminent() {
            let r = if self.reference_picks {
                self.pick_unit_group_reference(view)
            } else {
                self.pick_unit_group(view)
            };
            if let Some(r) = r {
                return Some(r);
            }
        }
        // Continue draining the active group.
        if let Some(wg) = self.active {
            if self.groups.contains_key(&wg) {
                if let Some(r) = self.pick_from_group(wg, view) {
                    return Some(r);
                }
                // The active group is blocked on command-queue headroom for
                // its banks. Never idle the transaction slot: pull one
                // schedulable request from the best other group so the
                // remaining banks keep streaming (the bandwidth-preserving
                // rule of Section IV-D's design discussion). The active
                // group resumes as soon as its banks free up.
                return if self.reference_picks {
                    self.pick_bypass_reference(view)
                } else {
                    self.pick_bypass(view)
                };
            }
            self.active = None;
        }
        // Select a new group.
        let wg = self.select_group(view)?;
        self.active = Some(wg);
        if let Some(r) = self.pick_from_group(wg, view) {
            return Some(r);
        }
        if self.reference_picks {
            self.pick_bypass_reference(view)
        } else {
            self.pick_bypass(view)
        }
    }

    fn remove_group(&mut self, wg: WarpGroupId) -> Vec<MemRequest> {
        let Some(entry) = self.groups.remove(&wg) else {
            return Vec::new();
        };
        self.remote_cap.remove(&wg);
        if self.active == Some(wg) {
            self.active = None;
        }
        self.by_seq.remove(&entry.seq);
        self.unit_by_seq.remove(&entry.seq);
        for r in &entry.reqs {
            self.bank_count[r.decoded.bank.0 as usize] -= 1;
            self.total -= 1;
            self.untally(r, entry.seq);
        }
        entry.reqs
    }

    fn on_shared(&mut self, wg: WarpGroupId) {
        if self.flags.shared_aware {
            self.shared.insert(wg);
        }
    }

    fn on_coord(&mut self, msg: CoordMsg, _now: Cycle) {
        if !self.flags.coordinate {
            return;
        }
        // Record the cap even when the group has not arrived here yet —
        // cross-channel skew makes that the common case: channel A selects
        // the group while its requests are still in flight toward us.
        let e = self.remote_cap.entry(msg.wg).or_insert(u32::MAX);
        *e = (*e).min(msg.score);
        // Bounded state: sweep entries for long-gone groups occasionally.
        if self.remote_cap.len() > 4 * self.groups.len() + 1024 {
            let groups = &self.groups;
            self.remote_cap.retain(|wg, _| groups.contains_key(wg));
        }
    }

    fn emit_coord(&mut self, out: &mut Vec<CoordMsg>) {
        out.append(&mut self.coord_out);
    }

    fn has_pending_for_bank(&self, bank: usize) -> bool {
        self.bank_count.get(bank).copied().unwrap_or(0) > 0
    }

    fn counters(&self) -> [u64; 4] {
        [
            self.groups_selected,
            self.merb_substitutions,
            self.wgw_priority_grants,
            self.coord_cap_applied,
        ]
    }
}

/// Build any scheduler (baseline or warp-aware) for `kind`.
pub fn make_policy(kind: SchedulerKind, mem: &MemConfig) -> Box<dyn Policy> {
    if let Some(p) = ldsim_memctrl::make_baseline_policy(kind, mem) {
        return p;
    }
    let (flags, name) = WgFlags::for_kind(kind).expect("WG-family kind");
    let mut p = WarpGroupPolicy::with_age_threshold(
        flags,
        name,
        mem.banks_per_channel,
        mem.gmc_age_threshold,
    );
    p.set_reference_picks(mem.reference_picks);
    Box::new(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldsim_gddr5::MerbTable;
    use ldsim_memctrl::{BankSnapshot, GroupTracker};
    use ldsim_types::addr::DecodedAddr;
    use ldsim_types::clock::ClockDomain;
    use ldsim_types::config::TimingParams;
    use ldsim_types::ids::{BankId, ChannelId, GlobalWarpId, RequestId};
    use ldsim_types::req::ReqKind;

    struct Fix {
        banks: Vec<BankSnapshot>,
        groups: GroupTracker,
        merb: MerbTable,
        write_q_len: usize,
        next_id: u64,
    }

    impl Fix {
        fn new() -> Self {
            Self {
                banks: vec![
                    BankSnapshot {
                        headroom: 8,
                        ..Default::default()
                    };
                    16
                ],
                groups: GroupTracker::default(),
                merb: MerbTable::from_timing(&TimingParams::default(), ClockDomain::GDDR5, 16),
                write_q_len: 0,
                next_id: 0,
            }
        }

        fn view(&self) -> PolicyView<'_> {
            PolicyView {
                now: 0,
                banks: &self.banks,
                groups: &self.groups,
                write_q_len: self.write_q_len,
                write_hi: 32,
                wgw_margin: 8,
                merb: &self.merb,
            }
        }

        fn req(&mut self, bank: u8, row: u32, wg: WarpGroupId, size: u16) -> MemRequest {
            self.next_id += 1;
            MemRequest {
                id: RequestId(self.next_id),
                kind: ReqKind::Read,
                line_addr: self.next_id,
                decoded: DecodedAddr {
                    channel: ChannelId(0),
                    bank: BankId(bank),
                    bank_group: bank / 4,
                    row,
                    col: 0,
                },
                wg,
                last_of_group: false,
                group_size_on_channel: size,
                issue_cycle: 0,
                arrival_cycle: 0,
            }
        }

        /// Register arrival with the tracker AND the policy.
        fn feed(&mut self, p: &mut WarpGroupPolicy, r: MemRequest) {
            self.groups.on_arrival(&r);
            p.on_arrival(r, 0);
        }
    }

    fn wg(sm: u16, warp: u16, serial: u32) -> WarpGroupId {
        WarpGroupId::new(GlobalWarpId::new(sm, warp), serial)
    }

    fn plain_wg() -> WarpGroupPolicy {
        WarpGroupPolicy::new(WgFlags::default(), "WG", 16)
    }

    #[test]
    fn shortest_group_first_and_drained_as_unit() {
        let mut f = Fix::new();
        let mut p = plain_wg();
        // Long group: 3 misses on bank 0 (stacked -> score 9).
        let ga = wg(0, 0, 0);
        for row in 0..3 {
            let r = f.req(0, row, ga, 3);
            f.feed(&mut p, r);
        }
        // Short group: 1 miss on idle bank 5 (score 3) — arrives later.
        let gb = wg(0, 1, 0);
        let r = f.req(5, 7, gb, 1);
        let short_id = r.id;
        f.feed(&mut p, r);
        let v = f.view();
        let first = p.pick(&v).unwrap();
        assert_eq!(first.id, short_id, "shortest job must go first");
        // The long group then drains contiguously.
        for _ in 0..3 {
            let r = p.pick(&f.view()).unwrap();
            assert_eq!(r.wg, ga);
        }
        assert_eq!(p.pending(), 0);
        assert_eq!(p.groups_selected, 2);
    }

    #[test]
    fn incomplete_groups_are_not_selected() {
        let mut f = Fix::new();
        let mut p = plain_wg();
        let ga = wg(0, 0, 0);
        // Group expects 2 requests; only 1 arrived.
        let r = f.req(0, 1, ga, 2);
        f.feed(&mut p, r);
        let gb = wg(0, 1, 0);
        let r = f.req(1, 1, gb, 1);
        let complete_id = r.id;
        f.feed(&mut p, r);
        let v = f.view();
        assert_eq!(p.pick(&v).unwrap().id, complete_id);
    }

    #[test]
    fn fallback_picks_partial_group_when_none_complete() {
        let mut f = Fix::new();
        let mut p = plain_wg();
        let ga = wg(0, 0, 0);
        let r = f.req(0, 1, ga, 5);
        f.feed(&mut p, r);
        let v = f.view();
        assert!(p.pick(&v).is_some(), "fragment fallback must make progress");
    }

    #[test]
    fn tie_breaks_toward_more_row_hits() {
        let mut f = Fix::new();
        let mut p = plain_wg();
        f.banks[2].last_scheduled_row = Some(4);
        // Group A: one miss (score 3, 0 hits).
        let ga = wg(0, 0, 0);
        let r = f.req(0, 9, ga, 1);
        f.feed(&mut p, r);
        // Group B: three stacked hits (score 3, 3 hits).
        let gb = wg(0, 1, 0);
        for _ in 0..3 {
            let r = f.req(2, 4, gb, 3);
            f.feed(&mut p, r);
        }
        let v = f.view();
        assert_eq!(p.pick(&v).unwrap().wg, gb, "hits win the score tie");
    }

    #[test]
    fn coordination_caps_local_score() {
        let mut f = Fix::new();
        let mut p = WarpGroupPolicy::new(
            WgFlags {
                coordinate: true,
                merb: false,
                write_aware: false,
                shared_aware: false,
            },
            "WG-M",
            16,
        );
        // Group A: expensive locally (score 9).
        let ga = wg(0, 0, 0);
        for row in 0..3 {
            let r = f.req(0, row, ga, 3);
            f.feed(&mut p, r);
        }
        // Group B: cheap locally (score 3).
        let gb = wg(0, 1, 0);
        let r = f.req(5, 7, gb, 1);
        f.feed(&mut p, r);
        // A remote controller reports group A already being serviced with
        // score 1 -> local cap prioritises it past B.
        p.on_coord(CoordMsg { wg: ga, score: 1 }, 0);
        let v = f.view();
        assert_eq!(p.pick(&v).unwrap().wg, ga);
        assert!(p.coord_cap_applied > 0);
    }

    #[test]
    fn coordination_ignored_without_flag() {
        let mut f = Fix::new();
        let mut p = plain_wg();
        let ga = wg(0, 0, 0);
        for row in 0..3 {
            let r = f.req(0, row, ga, 3);
            f.feed(&mut p, r);
        }
        let gb = wg(0, 1, 0);
        let r = f.req(5, 7, gb, 1);
        let id_b = r.id;
        f.feed(&mut p, r);
        p.on_coord(CoordMsg { wg: ga, score: 1 }, 0);
        let v = f.view();
        assert_eq!(p.pick(&v).unwrap().id, id_b, "WG has no coordination");
    }

    #[test]
    fn selection_emits_coord_message() {
        let mut f = Fix::new();
        let mut p = WarpGroupPolicy::new(
            WgFlags {
                coordinate: true,
                merb: false,
                write_aware: false,
                shared_aware: false,
            },
            "WG-M",
            16,
        );
        let ga = wg(3, 4, 5);
        let r = f.req(1, 1, ga, 1);
        f.feed(&mut p, r);
        let v = f.view();
        p.pick(&v).unwrap();
        let mut out = Vec::new();
        p.emit_coord(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].wg, ga);
        assert_eq!(out[0].score, 3);
    }

    #[test]
    fn merb_gate_substitutes_row_hits_for_gated_miss() {
        let mut f = Fix::new();
        let mut p = WarpGroupPolicy::new(
            WgFlags {
                coordinate: true,
                merb: true,
                write_aware: false,
                shared_aware: false,
            },
            "WG-Bw",
            16,
        );
        // Bank 0 has row 5 open with only 1 hit serviced so far; MERB for a
        // single busy bank is 31, so a miss is firmly gated.
        f.banks[0].last_scheduled_row = Some(5);
        f.banks[0].hits_since_row_open = 1;
        f.banks[0].busy = true;
        // Selected group: one miss on bank 0 (different row). With the
        // bank's queue score of 6 it scores 9.
        f.banks[0].queue_score = 6;
        let gm = wg(0, 0, 0);
        let r = f.req(0, 9, gm, 1);
        f.feed(&mut p, r);
        // Another group holds 4 hits for the open row, stacking to 10 — so
        // the miss group wins selection, then hits the MERB gate.
        let gh = wg(0, 1, 0);
        for _ in 0..4 {
            let r = f.req(0, 5, gh, 4);
            f.feed(&mut p, r);
        }
        let v = f.view();
        let first = p.pick(&v).unwrap();
        assert_eq!(first.wg, gh, "MERB gate must substitute a pending hit");
        assert_eq!(first.decoded.row, 5);
        assert!(p.merb_substitutions > 0);
    }

    #[test]
    fn merb_orphan_control_flushes_last_two_hits() {
        let mut f = Fix::new();
        let mut p = WarpGroupPolicy::new(
            WgFlags {
                coordinate: false,
                merb: true,
                write_aware: false,
                shared_aware: false,
            },
            "WG-Bw",
            16,
        );
        // Gate is formally open (counter 31 >= any MERB), but 2 hits remain:
        // orphan control services them before the miss.
        f.banks[0].last_scheduled_row = Some(5);
        f.banks[0].hits_since_row_open = 31;
        f.banks[0].busy = true;
        f.banks[0].queue_score = 6;
        let gm = wg(0, 0, 0);
        let r = f.req(0, 9, gm, 1);
        f.feed(&mut p, r);
        let gh = wg(0, 1, 0);
        for _ in 0..2 {
            let r = f.req(0, 5, gh, 2);
            f.feed(&mut p, r);
        }
        let v = f.view();
        let first = p.pick(&v).unwrap();
        assert_eq!(first.decoded.row, 5, "orphan hits must not be stranded");
    }

    #[test]
    fn wgw_prioritises_unit_groups_before_drain() {
        let mut f = Fix::new();
        let mut p = WarpGroupPolicy::new(
            WgFlags {
                coordinate: true,
                merb: true,
                write_aware: true,
                shared_aware: false,
            },
            "WG-W",
            16,
        );
        // Expensive-but-short group would normally lose to a cheap long one;
        // with the write queue 25/32 (within margin 8), the unit group wins.
        f.banks[3].queue_score = 20;
        let unit = wg(0, 0, 0);
        let r = f.req(3, 1, unit, 1);
        let unit_id = r.id;
        f.feed(&mut p, r);
        f.banks[7].last_scheduled_row = Some(2);
        let cheap = wg(0, 1, 0);
        for _ in 0..2 {
            let r = f.req(7, 2, cheap, 2);
            f.feed(&mut p, r);
        }
        f.write_q_len = 25;
        let v = f.view();
        assert_eq!(p.pick(&v).unwrap().id, unit_id);
        assert!(p.wgw_priority_grants > 0);
        // Without drain pressure the cheap group goes first.
        f.write_q_len = 0;
        let v = f.view();
        assert_eq!(p.pick(&v).unwrap().wg, cheap);
    }

    #[test]
    fn remove_group_clears_all_state() {
        let mut f = Fix::new();
        let mut p = plain_wg();
        let ga = wg(0, 0, 0);
        for row in 0..3 {
            let r = f.req(0, row, ga, 3);
            f.feed(&mut p, r);
        }
        let out = p.remove_group(ga);
        assert_eq!(out.len(), 3);
        assert_eq!(p.pending(), 0);
        assert!(!p.has_pending_for_bank(0));
    }

    #[test]
    fn shared_groups_win_score_ties_under_wg_s() {
        let mut f = Fix::new();
        let mut p = WarpGroupPolicy::new(
            WgFlags {
                coordinate: true,
                merb: false,
                write_aware: false,
                shared_aware: true,
            },
            "WG-S",
            16,
        );
        // Two identical-score groups; the second is flagged shared.
        let ga = wg(0, 0, 0);
        let r = f.req(0, 1, ga, 1);
        f.feed(&mut p, r);
        let gb = wg(0, 1, 0);
        let r = f.req(1, 1, gb, 1);
        f.feed(&mut p, r);
        Policy::on_shared(&mut p, gb);
        let v = f.view();
        assert_eq!(p.pick(&v).unwrap().wg, gb, "shared group breaks the tie");
        assert_eq!(p.shared_promotions, 1);
        // Without the flag, sharing notifications are ignored.
        let mut q = plain_wg();
        let r = f.req(0, 1, ga, 1);
        f.feed(&mut q, r);
        let r = f.req(1, 1, gb, 1);
        f.feed(&mut q, r);
        Policy::on_shared(&mut q, gb);
        let v = f.view();
        assert_eq!(
            q.pick(&v).unwrap().wg,
            ga,
            "WG ignores sharing (oldest wins)"
        );
    }

    #[test]
    fn factory_builds_every_kind() {
        let mem = MemConfig::default();
        for k in [
            SchedulerKind::Fcfs,
            SchedulerKind::FrFcfs,
            SchedulerKind::Gmc,
            SchedulerKind::Wafcfs,
            SchedulerKind::Sbwas { alpha_q: 2 },
            SchedulerKind::Wg,
            SchedulerKind::WgM,
            SchedulerKind::WgBw,
            SchedulerKind::WgW,
            SchedulerKind::WgShared,
            SchedulerKind::ZeroDivergence,
            SchedulerKind::ParBs,
            SchedulerKind::AtlasLite,
        ] {
            let p = make_policy(k, &mem);
            assert!(!p.name().is_empty());
        }
    }

    #[test]
    fn aging_guard_preempts_sjf() {
        let mut f = Fix::new();
        let mut p = WarpGroupPolicy::with_age_threshold(WgFlags::default(), "WG", 16, 100);
        // An expensive old group...
        f.banks[0].queue_score = 30;
        let old = wg(0, 0, 0);
        let r = f.req(0, 1, old, 1);
        let old_id = r.id;
        f.feed(&mut p, r);
        // ...and a cheap young one.
        let young = wg(0, 1, 0);
        let r = f.req(5, 7, young, 1);
        f.feed(&mut p, r);
        // Young wins under SJF at t=50 (below threshold)...
        let mut v = f.view();
        v.now = 50;
        assert_eq!(p.pick(&v).unwrap().wg, young);
        // ...but once the old group exceeds the age threshold it preempts.
        let r = f.req(5, 7, young, 1);
        f.feed(&mut p, r);
        let mut v = f.view();
        v.now = 500;
        assert_eq!(p.pick(&v).unwrap().id, old_id, "starvation guard");
    }

    #[test]
    fn bypass_pull_keeps_banks_busy_when_active_blocked() {
        let mut f = Fix::new();
        let mut p = plain_wg();
        // Active group targets bank 0 only (cheap: its row is open); bank 0
        // then runs out of command-queue headroom; another group waits on
        // bank 3.
        f.banks[0].last_scheduled_row = Some(1);
        let ga = wg(0, 0, 0);
        for _ in 0..2 {
            let r = f.req(0, 1, ga, 2);
            f.feed(&mut p, r);
        }
        let gb = wg(0, 1, 0);
        let r = f.req(3, 9, gb, 1);
        let idb = r.id;
        f.feed(&mut p, r);
        // First pick selects ga (older, same score class) and takes one req.
        let first = p.pick(&f.view()).unwrap();
        assert_eq!(first.wg, ga);
        // Now bank 0 is full: the transaction slot must not idle.
        f.banks[0].headroom = 0;
        let second = p.pick(&f.view()).unwrap();
        assert_eq!(second.id, idb, "bypass must pull from another group");
        // Active group resumes once headroom returns.
        f.banks[0].headroom = 8;
        assert_eq!(p.pick(&f.view()).unwrap().wg, ga);
    }

    #[test]
    fn bypass_prefers_complete_groups_over_better_scored_incomplete() {
        // Pin the bypass tie-break order: incomplete groups are considered
        // only when NO complete group exists, even when an incomplete group
        // has a strictly better score. (The indexed reimplementation must
        // preserve this two-phase candidate set exactly.)
        let mut f = Fix::new();
        let mut p = plain_wg();
        // Active group: two cheap hits on bank 0.
        f.banks[0].last_scheduled_row = Some(1);
        let ga = wg(0, 0, 0);
        for _ in 0..2 {
            let r = f.req(0, 1, ga, 2);
            f.feed(&mut p, r);
        }
        // Complete group on a congested bank (score 23 = 20 queued + 3).
        f.banks[3].queue_score = 20;
        let gb = wg(0, 1, 0);
        let r = f.req(3, 9, gb, 1);
        let idb = r.id;
        f.feed(&mut p, r);
        // Incomplete group on an idle bank (score 3 — strictly better).
        let gc = wg(0, 2, 0);
        let r = f.req(4, 9, gc, 2); // expects 2 requests, only 1 arrived
        let idc = r.id;
        f.feed(&mut p, r);
        // Drain starts on ga, then bank 0 blocks: bypass must take the
        // COMPLETE group gb despite gc's better score.
        assert_eq!(p.pick(&f.view()).unwrap().wg, ga);
        f.banks[0].headroom = 0;
        assert_eq!(
            p.pick(&f.view()).unwrap().id,
            idb,
            "bypass must prefer complete groups regardless of score"
        );
        // With gb gone, only the incomplete gc remains: the fallback may now
        // (and must) pull from it rather than idle the transaction slot.
        assert_eq!(
            p.pick(&f.view()).unwrap().id,
            idc,
            "bypass falls back to incomplete groups only when none complete"
        );
    }

    #[test]
    fn counters_roundtrip() {
        let mut f = Fix::new();
        let mut p = WarpGroupPolicy::new(
            WgFlags {
                coordinate: true,
                merb: true,
                write_aware: true,
                shared_aware: false,
            },
            "WG-W",
            16,
        );
        let g = wg(0, 0, 0);
        let r = f.req(1, 1, g, 1);
        f.feed(&mut p, r);
        p.pick(&f.view()).unwrap();
        let c = Policy::counters(&p);
        assert_eq!(c[0], 1, "one group selected");
    }

    /// Satellite property test (PR 1 seeded-loop convention): drive an
    /// indexed policy and a `reference_picks` twin through the same random
    /// operation stream — arrivals, picks under randomly mutated bank
    /// snapshots, coordination, sharing, group removal, aging — for every
    /// combination of the four WG flags, and require identical picks,
    /// identical counters, and intact incremental indexes throughout.
    #[test]
    fn indexed_picks_match_reference_scans_under_random_ops() {
        use ldsim_util::StdRng;
        for combo in 0u8..16 {
            let flags = WgFlags {
                coordinate: combo & 1 != 0,
                merb: combo & 2 != 0,
                write_aware: combo & 4 != 0,
                shared_aware: combo & 8 != 0,
            };
            for seed in 0u64..3 {
                let mut rng = StdRng::seed_from_u64(0x1D3A ^ (combo as u64) << 8 ^ seed);
                let mut idx = WarpGroupPolicy::with_age_threshold(flags, "idx", 16, 500);
                let mut rf = WarpGroupPolicy::with_age_threshold(flags, "ref", 16, 500);
                rf.set_reference_picks(true);
                let mut f = Fix::new();
                let mut now: Cycle = 0;
                let mut live: Vec<WarpGroupId> = Vec::new();
                let mut serial = 0u32;
                for step in 0..600 {
                    match rng.gen_range(0u32..100) {
                        // Arrivals: a fresh group, possibly left incomplete,
                        // possibly completed through upstream absorption.
                        0..=44 => {
                            serial += 1;
                            let g = wg(0, (serial % 7) as u16, serial);
                            let size = rng.gen_range(1u16..=4);
                            let arrive = rng.gen_range(1u16..=size);
                            for _ in 0..arrive {
                                let bank = rng.gen_range(0u8..16);
                                let row = rng.gen_range(0u32..4);
                                let r = f.req(bank, row, g, size);
                                f.groups.on_arrival(&r);
                                idx.on_arrival(r, now);
                                rf.on_arrival(r, now);
                            }
                            if arrive < size && rng.gen_bool(0.5) {
                                for _ in arrive..size {
                                    f.groups.on_absorbed(g, size);
                                }
                            }
                            live.push(g);
                        }
                        // Picks under a randomly perturbed bank view.
                        45..=79 => {
                            for b in 0..16 {
                                let s = &mut f.banks[b];
                                s.headroom = if rng.gen_bool(0.2) {
                                    rng.gen_range(0usize..3)
                                } else {
                                    rng.gen_range(3usize..=8)
                                };
                                s.queue_score = rng.gen_range(0u32..30);
                                s.queue_len = 8 - s.headroom;
                                s.busy = s.queue_len > 0;
                                s.last_scheduled_row = if rng.gen_bool(0.6) {
                                    Some(rng.gen_range(0u32..4))
                                } else {
                                    None
                                };
                                s.hits_since_row_open = rng.gen_range(0u8..32);
                            }
                            f.write_q_len = rng.gen_range(0usize..32);
                            let mut v = f.view();
                            v.now = now;
                            let a = idx.pick(&v);
                            let b = rf.pick(&v);
                            assert_eq!(
                                a.as_ref().map(|r| (r.id, r.wg)),
                                b.as_ref().map(|r| (r.id, r.wg)),
                                "pick diverged: flags={flags:?} seed={seed} step={step}"
                            );
                        }
                        // WG-M coordination from a phantom remote controller.
                        80..=87 => {
                            if let Some(&g) = live.get(rng.gen_range(0usize..live.len().max(1))) {
                                let m = CoordMsg {
                                    wg: g,
                                    score: rng.gen_range(0u32..12),
                                };
                                idx.on_coord(m, now);
                                rf.on_coord(m, now);
                            }
                        }
                        // WG-S sharing notifications.
                        88..=91 => {
                            if let Some(&g) = live.get(rng.gen_range(0usize..live.len().max(1))) {
                                Policy::on_shared(&mut idx, g);
                                Policy::on_shared(&mut rf, g);
                            }
                        }
                        // Zero-divergence-style whole-group removal.
                        92..=94 => {
                            if let Some(&g) = live.get(rng.gen_range(0usize..live.len().max(1))) {
                                let a = idx.remove_group(g);
                                let b = rf.remove_group(g);
                                let ia: Vec<_> = a.iter().map(|r| r.id).collect();
                                let ib: Vec<_> = b.iter().map(|r| r.id).collect();
                                assert_eq!(ia, ib, "remove_group diverged");
                            }
                        }
                        // Time advances (starvation guard engagement).
                        _ => now += rng.gen_range(1u64..400),
                    }
                    assert_eq!(idx.pending(), rf.pending());
                    if step % 37 == 0 {
                        idx.check_index_invariants();
                        rf.check_index_invariants();
                    }
                }
                // Drain both to empty with full headroom and compare tallies.
                for b in 0..16 {
                    f.banks[b].headroom = 8;
                }
                let mut v = f.view();
                v.now = now;
                loop {
                    let a = idx.pick(&v);
                    let b = rf.pick(&v);
                    assert_eq!(
                        a.as_ref().map(|r| r.id),
                        b.as_ref().map(|r| r.id),
                        "drain pick diverged: flags={flags:?} seed={seed}"
                    );
                    if a.is_none() {
                        break;
                    }
                }
                idx.check_index_invariants();
                assert_eq!(
                    Policy::counters(&idx),
                    Policy::counters(&rf),
                    "counters diverged: flags={flags:?} seed={seed}"
                );
                assert_eq!(idx.shared_promotions, rf.shared_promotions);
            }
        }
    }

    #[test]
    fn headroom_is_respected_within_group() {
        let mut f = Fix::new();
        let mut p = plain_wg();
        let ga = wg(0, 0, 0);
        // Two requests: bank 0 has no headroom, bank 1 full headroom.
        let r = f.req(0, 1, ga, 2);
        f.feed(&mut p, r);
        let r = f.req(1, 1, ga, 2);
        let ok_id = r.id;
        f.feed(&mut p, r);
        f.banks[0].headroom = 0;
        let v = f.view();
        assert_eq!(p.pick(&v).unwrap().id, ok_id);
        // The remaining request cannot be scheduled at all right now.
        let v = f.view();
        assert!(p.pick(&v).is_none());
        assert_eq!(p.pending(), 1);
    }
}
