//! Warp-aware DRAM scheduling — the contribution of *Chatterjee et al.,
//! "Managing DRAM Latency Divergence in Irregular GPGPU Applications",
//! SC 2014* (Section IV).
//!
//! The four schemes are one policy ([`WarpGroupPolicy`]) with three
//! composable features, mirroring how the paper builds them up:
//!
//! | scheme  | batching + SJF | coordination | MERB | write-aware |
//! |---------|:--:|:--:|:--:|:--:|
//! | `WG`    | x  |    |    |    |
//! | `WG-M`  | x  | x  |    |    |
//! | `WG-Bw` | x  | x  | x  |    |
//! | `WG-W`  | x  | x  | x  | x  |
//!
//! * **Warp-group batching + bank-aware shortest-job-first** (Section IV-B):
//!   requests of one dynamic load form a warp-group; the Bank-Table scoring
//!   of [`score`] estimates each complete group's drain time (row-hit = 1,
//!   row-miss = 3, plus the queued score of every bank it touches, maxed
//!   over banks); the group with the lowest score is serviced as a unit.
//! * **Multi-controller coordination** (Section IV-C): on selection, a
//!   controller broadcasts `(warp-group, local score)` on a narrow
//!   all-to-all network ([`coord::CoordNetwork`]); receivers cap the
//!   matching group's local score at the remote value, prioritising warps
//!   already receiving service elsewhere.
//! * **MERB bandwidth recovery** (Section IV-D): a row-miss from the
//!   selected group is postponed while the target bank's row-hit counter is
//!   below the boot-time MERB threshold and other groups still have row
//!   hits for that bank — plus the orphan-control rule that never leaves
//!   one or two stranded hits behind.
//! * **Warp-aware write draining** (Section IV-E): when the write queue is
//!   within `wgw_margin` entries of its high watermark, warp-groups with a
//!   single outstanding request are serviced first, regardless of score, so
//!   the imminent drain strands no nearly-complete warp.

pub mod coord;
pub mod score;
pub mod wg;

pub use coord::CoordNetwork;
pub use wg::{make_policy, WarpGroupPolicy, WgFlags};
