//! The inter-controller coordination network (Section IV-C).
//!
//! A narrow all-to-all network — the paper assumes 30 links of 16 bits for
//! 6 controllers. When a controller selects a warp-group it broadcasts a
//! 32-bit message (SM id, warp id, local completion score) to the other
//! five controllers. We model serialisation (2 cycles for 32 bits over a
//! 16-bit link) plus propagation as a fixed per-message latency, configured
//! by [`ldsim_types::MemConfig::coord_latency`].

use ldsim_memctrl::CoordMsg;
use ldsim_types::clock::Cycle;
use std::collections::VecDeque;

/// An in-flight broadcast: `msg` from `src`, delivered to every other
/// controller at `deliver_at`.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    deliver_at: Cycle,
    src: usize,
    msg: CoordMsg,
}

/// The all-to-all score-coordination network between memory controllers.
#[derive(Debug)]
pub struct CoordNetwork {
    latency: Cycle,
    num_ctrls: usize,
    in_flight: VecDeque<InFlight>,
    /// Total broadcasts sent (each reaches `num_ctrls - 1` receivers).
    pub messages_sent: u64,
}

impl CoordNetwork {
    pub fn new(num_ctrls: usize, latency: Cycle) -> Self {
        Self {
            latency,
            num_ctrls,
            in_flight: VecDeque::new(),
            messages_sent: 0,
        }
    }

    /// Controller `src` broadcasts `msg` at cycle `now`.
    pub fn broadcast(&mut self, src: usize, msg: CoordMsg, now: Cycle) {
        self.messages_sent += 1;
        self.in_flight.push_back(InFlight {
            deliver_at: now + self.latency,
            src,
            msg,
        });
    }

    /// Pop every delivery due at or before `now`; the callback receives
    /// `(destination controller, message)` for each of the `num_ctrls - 1`
    /// receivers of each due broadcast.
    pub fn deliver(&mut self, now: Cycle, mut sink: impl FnMut(usize, CoordMsg)) {
        while let Some(f) = self.in_flight.front() {
            if f.deliver_at > now {
                break;
            }
            let f = self.in_flight.pop_front().unwrap();
            for dst in 0..self.num_ctrls {
                if dst != f.src {
                    sink(dst, f.msg);
                }
            }
        }
    }

    /// Pop every broadcast due strictly before `end`, fanning each out to
    /// its `num_ctrls - 1` receivers as `(deliver_cycle, dst, msg)` — the
    /// same per-message destination order [`Self::deliver`] uses. The
    /// epoch scheduler calls this at a window's opening barrier to hand
    /// partitions the coordination traffic they will observe mid-window
    /// (every such message was broadcast before the window opened, so its
    /// content and delivery cycle are already committed; DESIGN.md §18).
    pub fn drain_due_before(&mut self, end: Cycle, mut sink: impl FnMut(Cycle, usize, CoordMsg)) {
        while let Some(f) = self.in_flight.front() {
            if f.deliver_at >= end {
                break;
            }
            let f = self.in_flight.pop_front().unwrap();
            for dst in 0..self.num_ctrls {
                if dst != f.src {
                    sink(f.deliver_at, dst, f.msg);
                }
            }
        }
    }

    pub fn pending(&self) -> usize {
        self.in_flight.len()
    }

    /// Earliest cycle a broadcast becomes deliverable (broadcasts are
    /// queued in monotone `deliver_at` order). `None` when nothing is in
    /// flight.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.in_flight.front().map(|f| f.deliver_at.max(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldsim_types::ids::{GlobalWarpId, WarpGroupId};

    fn msg(score: u32) -> CoordMsg {
        CoordMsg {
            wg: WarpGroupId::new(GlobalWarpId::new(1, 2), 3),
            score,
        }
    }

    #[test]
    fn delivers_to_all_but_source_after_latency() {
        let mut net = CoordNetwork::new(6, 4);
        net.broadcast(2, msg(7), 100);
        let mut got = Vec::new();
        net.deliver(103, |d, m| got.push((d, m.score)));
        assert!(got.is_empty(), "too early");
        net.deliver(104, |d, m| got.push((d, m.score)));
        assert_eq!(got.len(), 5);
        assert!(got.iter().all(|&(d, _)| d != 2));
        assert!(got.iter().all(|&(_, s)| s == 7));
        assert_eq!(net.pending(), 0);
        assert_eq!(net.messages_sent, 1);
    }

    #[test]
    fn preserves_order_of_due_messages() {
        let mut net = CoordNetwork::new(3, 1);
        net.broadcast(0, msg(1), 10);
        net.broadcast(1, msg(2), 11);
        let mut scores = Vec::new();
        net.deliver(12, |_, m| scores.push(m.score));
        assert_eq!(scores, vec![1, 1, 2, 2]);
    }
}
