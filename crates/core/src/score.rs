//! Bank-Table scoring (Section IV-B.1).
//!
//! The score of a warp-group estimates its completion latency at this
//! controller:
//!
//! * each of the group's requests scores 1 if it will be a row hit (the
//!   bank's last-scheduled row matches) or 3 if a miss — the 12 ns vs 36 ns
//!   DRAM array latencies;
//! * per bank, the group's requests stack on top of the *queuing score* of
//!   everything already sitting in that bank's command queue;
//! * the group's score is the **maximum** over the banks it touches — the
//!   completion time of its slowest request;
//! * ties are broken toward the group with the most row hits (Section
//!   IV-B.1: row hits minimise DRAM power).

use ldsim_memctrl::PolicyView;
use ldsim_types::req::MemRequest;

/// Evaluated score of one warp-group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupScore {
    /// Max-over-banks completion estimate. Lower is better.
    pub score: u32,
    /// Row hits in the group (tie-breaker: more is better).
    pub hits: u32,
}

impl GroupScore {
    /// Strict-weak ordering used by the transaction scheduler: lowest score
    /// first; ties -> most hits first.
    #[inline]
    pub fn better_than(&self, other: &GroupScore) -> bool {
        self.score < other.score || (self.score == other.score && self.hits > other.hits)
    }
}

/// Score a group's request list against the current controller state.
///
/// `scratch` must be a zeroed slice at least as long as `view.banks`; it is
/// re-zeroed before return so the caller can reuse it across calls without
/// reallocating (hot path: runs for every live group, every scheduling
/// decision).
pub fn group_score(reqs: &[MemRequest], view: &PolicyView<'_>, scratch: &mut [u32]) -> GroupScore {
    debug_assert!(scratch.len() >= view.banks.len());
    debug_assert!(scratch.iter().all(|&x| x == 0));
    let mut touched: [u16; 48] = [0; 48];
    let mut ntouched = 0usize;
    let mut hits = 0u32;
    for r in reqs {
        let b = r.decoded.bank.0 as usize;
        if scratch[b] == 0 {
            // First request of the group on this bank: base is the bank's
            // queued score. +1 biases all entries so "untouched" stays 0.
            scratch[b] = view.banks[b].queue_score + 1;
            touched[ntouched] = b as u16;
            ntouched += 1;
        }
        let s = view.array_score(&r.decoded);
        if s == ldsim_memctrl::SCORE_HIT {
            hits += 1;
        }
        scratch[b] += s;
    }
    let mut max = 0u32;
    for &b in &touched[..ntouched] {
        max = max.max(scratch[b as usize] - 1);
        scratch[b as usize] = 0;
    }
    GroupScore { score: max, hits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldsim_gddr5::MerbTable;
    use ldsim_memctrl::{BankSnapshot, GroupTracker};
    use ldsim_types::addr::DecodedAddr;
    use ldsim_types::clock::ClockDomain;
    use ldsim_types::config::TimingParams;
    use ldsim_types::ids::{BankId, ChannelId, GlobalWarpId, RequestId, WarpGroupId};
    use ldsim_types::req::ReqKind;

    fn req_at(bank: u8, row: u32) -> MemRequest {
        MemRequest {
            id: RequestId(0),
            kind: ReqKind::Read,
            line_addr: 0,
            decoded: DecodedAddr {
                channel: ChannelId(0),
                bank: BankId(bank),
                bank_group: bank / 4,
                row,
                col: 0,
            },
            wg: WarpGroupId::new(GlobalWarpId::new(0, 0), 0),
            last_of_group: false,
            group_size_on_channel: 1,
            issue_cycle: 0,
            arrival_cycle: 0,
        }
    }

    struct Fix {
        banks: Vec<BankSnapshot>,
        groups: GroupTracker,
        merb: MerbTable,
    }

    impl Fix {
        fn new() -> Self {
            Self {
                banks: vec![BankSnapshot::default(); 16],
                groups: GroupTracker::default(),
                merb: MerbTable::from_timing(&TimingParams::default(), ClockDomain::GDDR5, 16),
            }
        }
        fn view(&self) -> PolicyView<'_> {
            PolicyView {
                now: 0,
                banks: &self.banks,
                groups: &self.groups,
                write_q_len: 0,
                write_hi: 32,
                wgw_margin: 8,
                merb: &self.merb,
            }
        }
    }

    #[test]
    fn all_hits_score_low() {
        let mut f = Fix::new();
        f.banks[2].last_scheduled_row = Some(9);
        let reqs = vec![req_at(2, 9), req_at(2, 9), req_at(2, 9)];
        let mut scratch = vec![0u32; 16];
        let s = group_score(&reqs, &f.view(), &mut scratch);
        assert_eq!(s.score, 3); // three stacked hits on one bank
        assert_eq!(s.hits, 3);
        assert!(scratch.iter().all(|&x| x == 0), "scratch re-zeroed");
    }

    #[test]
    fn misses_score_three_each() {
        let f = Fix::new();
        let reqs = vec![req_at(0, 5), req_at(1, 5)];
        let mut scratch = vec![0u32; 16];
        let s = group_score(&reqs, &f.view(), &mut scratch);
        // Parallel misses on two banks: max = 3, not 6.
        assert_eq!(s.score, 3);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn queue_score_stacks_under_group() {
        let mut f = Fix::new();
        f.banks[4].queue_score = 10;
        let reqs = vec![req_at(4, 1)];
        let mut scratch = vec![0u32; 16];
        let s = group_score(&reqs, &f.view(), &mut scratch);
        assert_eq!(s.score, 13); // 10 queued + 3 (miss)
    }

    #[test]
    fn max_over_banks_captures_slowest() {
        let mut f = Fix::new();
        f.banks[0].queue_score = 1;
        f.banks[7].queue_score = 20;
        let reqs = vec![req_at(0, 1), req_at(7, 1)];
        let mut scratch = vec![0u32; 16];
        let s = group_score(&reqs, &f.view(), &mut scratch);
        assert_eq!(s.score, 23);
    }

    #[test]
    fn fewer_requests_is_not_always_shorter() {
        // The paper's point (Section IV-B): a group with ONE miss on a busy
        // bank is a longer job than a group with FOUR hits on an idle bank.
        let mut f = Fix::new();
        f.banks[3].queue_score = 12;
        f.banks[5].last_scheduled_row = Some(2);
        let one_miss_busy = vec![req_at(3, 1)];
        let four_hits_idle = vec![req_at(5, 2), req_at(5, 2), req_at(5, 2), req_at(5, 2)];
        let mut scratch = vec![0u32; 16];
        let a = group_score(&one_miss_busy, &f.view(), &mut scratch);
        let b = group_score(&four_hits_idle, &f.view(), &mut scratch);
        assert!(
            b.better_than(&a),
            "4 hits ({}) vs 1 busy miss ({})",
            b.score,
            a.score
        );
    }

    #[test]
    fn tie_breaks_on_hits() {
        let a = GroupScore { score: 5, hits: 3 };
        let b = GroupScore { score: 5, hits: 1 };
        assert!(a.better_than(&b));
        assert!(!b.better_than(&a));
        let c = GroupScore { score: 4, hits: 0 };
        assert!(c.better_than(&a));
    }
}
