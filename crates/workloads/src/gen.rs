//! Kernel generation from benchmark profiles.
//!
//! Deterministic: every (benchmark, scale, seed, sm, warp) tuple produces
//! the same instruction stream, so scheduler comparisons run the *identical*
//! workload and IPC differences are attributable to the memory system alone.

use crate::profile::{find, BenchProfile};
use ldsim_types::addr::AddressMapper;
use ldsim_types::config::MemConfig;
use ldsim_types::ids::LaneMask;
use ldsim_types::kernel::{Instruction, KernelProgram, WarpProgram};
use ldsim_util::rng::StdRng;

/// Simulation scale: how much machine and how much work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// 2 SMs x 4 warps — unit/integration tests.
    Tiny,
    /// 8 SMs x 12 warps — quick experiments.
    Small,
    /// 30 SMs x 24 warps — the paper-scale configuration.
    Full,
}

impl Scale {
    pub fn num_sms(&self) -> usize {
        match self {
            Scale::Tiny => 2,
            Scale::Small => 8,
            Scale::Full => 30,
        }
    }

    pub fn warps_per_sm(&self) -> usize {
        match self {
            Scale::Tiny => 4,
            Scale::Small => 10,
            Scale::Full => 12,
        }
    }

    pub fn mem_insns(&self, profile_insns: usize) -> usize {
        match self {
            Scale::Tiny => (profile_insns / 4).max(4),
            Scale::Small => (profile_insns / 2).max(8),
            Scale::Full => profile_insns,
        }
    }
}

/// A configured benchmark instance.
#[derive(Debug, Clone)]
pub struct BenchmarkGen {
    pub profile: &'static BenchProfile,
    pub scale: Scale,
    pub seed: u64,
    mapper: AddressMapper,
    /// Set when the name resolved to a calibration microbenchmark
    /// (`mb_*`), whose kernels are built by construction rather than from
    /// profile statistics.
    micro: Option<&'static crate::microbench::Microbench>,
}

/// Look up `name` and bind it to a scale and seed. Calibration
/// microbenchmarks (`mb_*`, see [`crate::microbench`]) resolve here too,
/// so the sweep/figure machinery treats them like any benchmark.
///
/// # Panics
/// On an unknown benchmark name — the registry is a fixed, documented set.
pub fn benchmark(name: &str, scale: Scale, seed: u64) -> BenchmarkGen {
    benchmark_with_mem(name, scale, seed, &MemConfig::default())
}

/// [`benchmark`] against an explicit device geometry: the generated address
/// stream targets `mem`'s mapper instead of the default GDDR5 one. The
/// per-preset validation ladders use this so a microbenchmark's
/// constructed row hits/conflicts land where that backend's mapper says
/// they do. Sweep cells deliberately do *not* — a sweep compares backends
/// on one fixed address stream, keyed by (bench, scale, seed).
pub fn benchmark_with_mem(name: &str, scale: Scale, seed: u64, mem: &MemConfig) -> BenchmarkGen {
    let mapper = AddressMapper::new(mem, 128);
    if let Some(mb) = crate::microbench::find(name) {
        return BenchmarkGen {
            profile: &mb.profile,
            scale,
            seed,
            mapper,
            micro: Some(mb),
        };
    }
    let profile = find(name).unwrap_or_else(|| panic!("unknown benchmark '{name}'"));
    BenchmarkGen {
        profile,
        scale,
        seed,
        mapper,
        micro: None,
    }
}

const LINE: u64 = 128;

impl BenchmarkGen {
    /// Generate the kernel: one program per (SM, warp slot).
    pub fn generate(&self) -> KernelProgram {
        if let Some(mb) = self.micro {
            return crate::microbench::generate(mb, &self.mapper, self.scale, self.seed);
        }
        let sms = self.scale.num_sms();
        let warps = self.scale.warps_per_sm();
        let mut programs = Vec::with_capacity(sms);
        for sm in 0..sms {
            let mut per_sm = Vec::with_capacity(warps);
            for warp in 0..warps {
                per_sm.push(self.warp_program(sm, warp, sms * warps));
            }
            programs.push(per_sm);
        }
        KernelProgram {
            name: self.profile.name.to_string(),
            programs,
        }
    }

    fn warp_seed(&self, sm: usize, warp: usize) -> u64 {
        // FNV-1a over (name, seed, sm, warp) for order-independence.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |b: u64| {
            h ^= b;
            h = h.wrapping_mul(0x1_0000_01b3);
        };
        for byte in self.profile.name.bytes() {
            eat(byte as u64);
        }
        eat(self.seed);
        eat(sm as u64);
        eat(warp as u64);
        h
    }

    /// Cycles of compute inserted between memory bursts so that aggregate
    /// DRAM demand lands at `target_util` of channel capacity. Capacity: 6
    /// channels moving one 2-burst line per 4 cycles at full streaming,
    /// derated by the tFAW/row-miss mix to ~0.9 lines/cycle.
    fn phase_gap(&self, total_warps: usize) -> u32 {
        let p = self.profile;
        let reqs_per_load = p.divergent_frac * p.clusters_mean + (1.0 - p.divergent_frac);
        // Writes add traffic via write-backs; count them at half weight.
        let traffic_per_mem = reqs_per_load * (1.0 + 0.5 * p.write_frac);
        let phase_reqs = p.burst_len as f64 * traffic_per_mem;
        let capacity = 0.9_f64;
        // Per-warp phase period targeting the utilisation goal: every warp
        // contributes `phase_reqs` DRAM lines per period. The 0.55 factor
        // is the closed-loop correction calibrated at Full scale: queueing
        // stretches each warp's own period, so nominal demand must exceed
        // the target for delivered utilisation to land on it.
        let per_warp = 0.55 * phase_reqs * total_warps as f64 / (capacity * p.target_util);
        // Subtract the burst's own expected duration (intra-burst compute
        // plus a nominal memory round trip per blocking load).
        let burst_cycles = p.burst_len as f64 * (p.compute_per_mem as f64 + 600.0);
        (per_warp - burst_cycles).max(100.0) as u32
    }

    fn warp_program(&self, sm: usize, warp: usize, total_warps: usize) -> WarpProgram {
        let p = self.profile;
        let mut rng = StdRng::seed_from_u64(self.warp_seed(sm, warp));
        // Phase jitter is seeded per *SM*: warps of one SM stay loosely
        // aligned (as barriers and common control flow keep them in real
        // kernels) while different SMs drift apart. The aligned bursts are
        // what makes latency divergence a throughput problem.
        let mut phase_rng = StdRng::seed_from_u64(self.warp_seed(sm, 0xFFFF));
        let n_mem = self.scale.mem_insns(p.mem_insns_per_warp);
        let mut insns = Vec::with_capacity(n_mem * 2);
        let phase_gap = self.phase_gap(total_warps);

        // Streaming base for this warp's coalesced accesses: disjoint slabs.
        let gw = sm * self.scale.warps_per_sm() + warp;
        let slab = (p.working_set / total_warps as u64) & !(LINE - 1);
        let stream_base = (gw as u64 * slab) % p.working_set;
        let mut stream_off = 0u64;
        // Anchor line for same-row clustering, refreshed on row changes.
        let mut anchor = self.random_line(&mut rng, p);

        for i in 0..n_mem {
            if i % p.burst_len == 0 {
                // Phase boundary: warp-private latency (dependency chains,
                // SFU/texture work, control flow). The gap is shared by the
                // SM's warps (±50% jitter per SM per phase) plus a small
                // per-warp skew, so warps of one SM burst together while
                // SMs desynchronise — throttling aggregate DRAM demand to
                // the utilisation target without monopolising the issue
                // port the way back-to-back ALU work would.
                let sm_jitter = phase_rng.gen_range(0..=phase_gap.max(1));
                let warp_skew = rng.gen_range(0..=(phase_gap / 16).max(1));
                insns.push(Instruction::Delay(
                    (phase_gap / 2 + sm_jitter + warp_skew).max(1),
                ));
            } else if i > 0 {
                // Intra-burst ALU work.
                let c = p.compute_per_mem.max(1);
                let jitter = rng.gen_range(0..=(c / 2).max(1));
                insns.push(Instruction::Compute(c / 2 + jitter + 1));
            }

            let is_store = rng.gen_bool(p.write_frac);
            let divergent = rng.gen_bool(if is_store {
                (p.divergent_frac * 0.7).min(1.0)
            } else {
                p.divergent_frac
            });
            let addrs = if divergent {
                let mean = if is_store {
                    (p.clusters_mean * 0.6).max(2.0)
                } else {
                    p.clusters_mean
                };
                self.gather(&mut rng, p, mean, &mut anchor)
            } else {
                // Coalesced stream within the warp's slab.
                let base = stream_base + stream_off;
                stream_off = (stream_off + 2 * LINE) % slab.max(2 * LINE);
                let mut a = [0u64; 32];
                for (l, x) in a.iter_mut().enumerate() {
                    *x = (base + 4 * l as u64) % p.working_set;
                }
                a
            };
            // Control-flow divergence: a quarter of divergent accesses run
            // with a partial lane mask (16-31 active lanes), as branchy
            // irregular kernels do.
            let mask = if divergent && rng.gen_bool(0.25) {
                let active = rng.gen_range(16..32usize);
                let mut m = LaneMask::NONE;
                for _ in 0..active {
                    m.set(rng.gen_range(0..32usize));
                }
                if m.count() == 0 {
                    LaneMask::ALL
                } else {
                    m
                }
            } else {
                LaneMask::ALL
            };
            insns.push(if is_store {
                Instruction::Store {
                    addrs: Box::new(addrs),
                    mask,
                }
            } else {
                Instruction::Load {
                    addrs: Box::new(addrs),
                    mask,
                }
            });
        }
        WarpProgram::new(insns)
    }

    /// Generate a divergent gather: `k` clusters of contiguous lanes, each
    /// targeting one cache line, with same-row bias between clusters.
    fn gather(&self, rng: &mut StdRng, p: &BenchProfile, mean: f64, anchor: &mut u64) -> [u64; 32] {
        let lo = (mean * 0.5).max(2.0) as usize;
        let hi = (mean * 1.5).min(32.0) as usize;
        let k = rng.gen_range(lo..=hi.max(lo));
        let mut cluster_lines = Vec::with_capacity(k);
        for i in 0..k {
            let line = if i > 0 && rng.gen_bool(p.same_row_bias) {
                // Stay in the anchor's DRAM row: pick another column of the
                // same (channel, bank, row).
                let buddies = self.mapper.same_row_lines(*anchor * LINE);
                if buddies.is_empty() {
                    *anchor
                } else {
                    buddies[rng.gen_range(0..buddies.len())] / LINE
                }
            } else {
                // New anchor: keep the warp on its current channel with
                // probability `channel_bias` (search a few candidates).
                let mut l = self.random_line(rng, p);
                if rng.gen_bool(p.channel_bias) {
                    let want = self.mapper.decode(*anchor * LINE).channel;
                    for _ in 0..16 {
                        if self.mapper.decode(l * LINE).channel == want {
                            break;
                        }
                        l = self.random_line(rng, p);
                    }
                }
                *anchor = l;
                l
            };
            cluster_lines.push(line);
        }
        let mut addrs = [0u64; 32];
        for lane in 0..32 {
            let cl = cluster_lines[lane * k / 32];
            let lane_in_cluster = (lane % (32usize.div_ceil(k))) as u64;
            addrs[lane] = cl * LINE + (4 * lane_in_cluster) % LINE;
        }
        addrs
    }

    /// Test hook: the computed per-warp phase gap at this generator's scale.
    #[doc(hidden)]
    pub fn phase_gap_for_test(&self) -> u32 {
        self.phase_gap(self.scale.num_sms() * self.scale.warps_per_sm())
    }

    /// Pick a random line, from the hot subset with probability `hot_frac`.
    fn random_line(&self, rng: &mut StdRng, p: &BenchProfile) -> u64 {
        let region = if rng.gen_bool(p.hot_frac) {
            p.hot_bytes
        } else {
            p.working_set
        };
        rng.gen_range(0..region / LINE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldsim_types::addr::AddressMapper;
    use ldsim_types::config::MemConfig;

    #[test]
    fn generation_is_deterministic() {
        let a = benchmark("bfs", Scale::Tiny, 42).generate();
        let b = benchmark("bfs", Scale::Tiny, 42).generate();
        assert_eq!(a.programs, b.programs);
        let c = benchmark("bfs", Scale::Tiny, 43).generate();
        assert_ne!(a.programs, c.programs);
    }

    #[test]
    fn scales_shape_the_kernel() {
        let t = benchmark("spmv", Scale::Tiny, 1).generate();
        assert_eq!(t.programs.len(), 2);
        assert_eq!(t.programs[0].len(), 4);
        let f = benchmark("spmv", Scale::Full, 1).generate();
        assert_eq!(f.programs.len(), 30);
        assert_eq!(f.programs[0].len(), 12);
        assert!(f.total_instructions() > t.total_instructions());
    }

    #[test]
    fn gathers_exhibit_same_row_locality() {
        // The same_row_bias of the profile must surface as requests sharing
        // a (channel, bank, row) within one load.
        let mapper = AddressMapper::new(&MemConfig::default(), 128);
        let k = benchmark("nw", Scale::Small, 11).generate();
        let (mut with_buddy, mut total) = (0usize, 0usize);
        for smp in &k.programs {
            for w in smp {
                for ins in &w.insns {
                    if let Instruction::Load { addrs, mask } = ins {
                        let mut lines: Vec<u64> = Vec::new();
                        for l in mask.iter() {
                            let line = addrs[l] >> 7;
                            if !lines.contains(&line) {
                                lines.push(line);
                            }
                        }
                        if lines.len() < 2 {
                            continue;
                        }
                        let ds: Vec<_> = lines.iter().map(|&l| mapper.decode(l * 128)).collect();
                        for (i, a) in ds.iter().enumerate() {
                            total += 1;
                            if ds.iter().enumerate().any(|(j, b)| i != j && a.same_row(b)) {
                                with_buddy += 1;
                            }
                        }
                    }
                }
            }
        }
        let frac = with_buddy as f64 / total as f64;
        assert!(
            frac > 0.12,
            "nw same-row fraction {frac} too low for its profile bias"
        );
    }

    #[test]
    fn irregular_benchmarks_diverge_regular_do_not() {
        let mapper = AddressMapper::new(&MemConfig::default(), 128);
        let stats = |name: &str| {
            let k = benchmark(name, Scale::Small, 3).generate();
            let mut loads = 0usize;
            let mut reqs = 0usize;
            let mut divergent = 0usize;
            for smp in &k.programs {
                for w in smp {
                    for i in &w.insns {
                        if let Instruction::Load { addrs, mask } = i {
                            let lines = ldsim_gpu_free_coalesce(addrs, *mask);
                            loads += 1;
                            reqs += lines;
                            if lines > 1 {
                                divergent += 1;
                            }
                        }
                    }
                }
            }
            let _ = &mapper;
            (reqs as f64 / loads as f64, divergent as f64 / loads as f64)
        };
        let (rpl_spmv, df_spmv) = stats("spmv");
        assert!(rpl_spmv > 4.0, "spmv requests/load {rpl_spmv}");
        assert!(df_spmv > 0.5, "spmv divergent frac {df_spmv}");
        let (rpl_bp, df_bp) = stats("bp");
        assert!(rpl_bp < 1.5, "bp requests/load {rpl_bp}");
        assert!(df_bp < 0.15, "bp divergent frac {df_bp}");
    }

    // Minimal local coalescer (avoids a dev-dependency on ldsim-gpu).
    fn ldsim_gpu_free_coalesce(addrs: &[u64; 32], mask: LaneMask) -> usize {
        let mut lines: Vec<u64> = Vec::new();
        for l in mask.iter() {
            let line = addrs[l] >> 7;
            if !lines.contains(&line) {
                lines.push(line);
            }
        }
        lines.len()
    }

    #[test]
    fn addresses_stay_inside_working_set() {
        let k = benchmark("cfd", Scale::Small, 9).generate();
        let ws = find("cfd").unwrap().working_set;
        for smp in &k.programs {
            for w in smp {
                for i in &w.insns {
                    if let Instruction::Load { addrs, .. } | Instruction::Store { addrs, .. } = i {
                        for &a in addrs.iter() {
                            assert!(a < ws + 128 * 16, "address {a:#x} outside working set");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn write_fraction_roughly_matches_profile() {
        let k = benchmark("nw", Scale::Full, 5).generate();
        let (mut loads, mut stores) = (0usize, 0usize);
        for smp in &k.programs {
            for w in smp {
                loads += w.num_loads();
                stores += w.num_stores();
            }
        }
        let frac = stores as f64 / (loads + stores) as f64;
        assert!((frac - 0.42).abs() < 0.05, "nw write frac {frac}");
    }

    #[test]
    fn phases_start_with_warp_private_delay() {
        let k = benchmark("bfs", Scale::Small, 2).generate();
        let p = &k.programs[0][0];
        // The program alternates: each burst boundary is a Delay (big),
        // intra-burst spacing is Compute (small).
        assert!(matches!(p.insns[0], Instruction::Delay(_)));
        let mut delays = 0;
        let mut computes = 0;
        for i in &p.insns {
            match i {
                Instruction::Delay(n) => {
                    delays += 1;
                    assert!(*n >= 50);
                }
                Instruction::Compute(n) => {
                    computes += 1;
                    assert!(*n < 200, "intra-burst compute should be small");
                }
                _ => {}
            }
        }
        assert!(delays >= 2);
        assert!(computes >= 2);
    }

    #[test]
    fn utilization_targets_scale_phase_gaps() {
        // A lower target_util must produce a longer per-warp phase gap for
        // the same benchmark shape.
        let hi = benchmark("spmv", Scale::Full, 1);
        let gap_hi = hi.phase_gap_for_test();
        // spmv target_util is the highest in the suite; compare against a
        // low-util profile with a similar traffic product.
        let lo = benchmark("bh", Scale::Full, 1);
        let gap_lo = lo.phase_gap_for_test();
        assert!(gap_hi > 0 && gap_lo > 0);
    }

    #[test]
    #[should_panic]
    fn unknown_benchmark_panics() {
        benchmark("not-a-benchmark", Scale::Tiny, 0);
    }
}
