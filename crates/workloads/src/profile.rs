//! Per-benchmark memory-behaviour profiles.
//!
//! Each [`BenchProfile`] encodes the characteristics the paper reports (or
//! implies) for one benchmark. The absolute values are calibration targets,
//! not measurements of the original binaries — see DESIGN.md substitution
//! #2. The important *relationships* are preserved:
//!
//! * `sssp`, `sp`, `spmv`, `cfd` spread warps over many controllers
//!   (≈3.2 on average; Fig. 3 discussion) — they benefit most from WG-M;
//! * `sad`, `nw`, `SS`, `bfs` stay under 2 controllers — WG alone captures
//!   most of their benefit;
//! * `nw`, `SS`, `sad`, `PVC` are write-intensive (Fig. 12) — WG-W matters;
//! * regular benchmarks coalesce to one request per load and stream.

/// Calibration targets for one synthetic benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchProfile {
    pub name: &'static str,
    pub suite: &'static str,
    /// Fraction of loads that are divergent gathers (rest coalesce to 1).
    pub divergent_frac: f64,
    /// Mean distinct cache lines per divergent load (post-coalescing).
    pub clusters_mean: f64,
    /// Probability that a gather cluster stays in the same DRAM row as the
    /// previous cluster (drives the ~30% same-row statistic).
    pub same_row_bias: f64,
    /// Probability that a new cluster anchor stays on the *same channel* as
    /// the previous one (different row/bank) — concentrates a warp's
    /// requests on few controllers, calibrating the requests-per-channel
    /// ratio (paper: 5.9 requests over ~2.5 controllers).
    pub channel_bias: f64,
    /// Probability a load targets the hot subset (drives cache hit rates).
    pub hot_frac: f64,
    /// Hot subset size in bytes.
    pub hot_bytes: u64,
    /// Cold working set in bytes.
    pub working_set: u64,
    /// Fraction of memory instructions that are stores (Fig. 12 intensity).
    pub write_frac: f64,
    /// ALU cycles between memory instructions *within a burst*.
    pub compute_per_mem: u32,
    /// Memory instructions issued back-to-back per phase (kernels gather,
    /// process, write — a burst per phase).
    pub burst_len: usize,
    /// Target DRAM data-bus utilisation: the generator sizes each phase's
    /// compute block so aggregate demand lands at this fraction of channel
    /// capacity. Irregular (latency-sensitive) benchmarks sit below
    /// saturation; regular streaming ones near it (Section VI-A:
    /// "bandwidth-bound").
    pub target_util: f64,
    /// Memory instructions per warp at Full scale.
    pub mem_insns_per_warp: usize,
    /// Is this one of the paper's irregular (MAI) benchmarks?
    pub irregular: bool,
}

/// The eleven irregular benchmarks of Table III.
pub const IRREGULAR: &[BenchProfile] = &[
    BenchProfile {
        name: "bfs",
        suite: "Rodinia",
        divergent_frac: 0.62,
        clusters_mean: 4.0,
        channel_bias: 0.55,
        same_row_bias: 0.23,
        hot_frac: 0.38,
        hot_bytes: 512 << 10,
        working_set: 96 << 20,
        write_frac: 0.06,
        compute_per_mem: 15,
        burst_len: 5,
        target_util: 0.88,
        mem_insns_per_warp: 32,
        irregular: true,
    },
    BenchProfile {
        name: "cfd",
        suite: "Rodinia",
        divergent_frac: 0.66,
        clusters_mean: 9.0,
        channel_bias: 0.25,
        same_row_bias: 0.17,
        hot_frac: 0.18,
        hot_bytes: 256 << 10,
        working_set: 192 << 20,
        write_frac: 0.16,
        compute_per_mem: 20,
        burst_len: 4,
        target_util: 0.92,
        mem_insns_per_warp: 30,
        irregular: true,
    },
    BenchProfile {
        name: "nw",
        suite: "Rodinia",
        divergent_frac: 0.48,
        clusters_mean: 3.0,
        channel_bias: 0.6,
        same_row_bias: 0.3,
        hot_frac: 0.32,
        hot_bytes: 512 << 10,
        working_set: 48 << 20,
        write_frac: 0.42,
        compute_per_mem: 12,
        burst_len: 6,
        target_util: 0.85,
        mem_insns_per_warp: 34,
        irregular: true,
    },
    BenchProfile {
        name: "kmeans",
        suite: "Rodinia",
        divergent_frac: 0.55,
        clusters_mean: 11.0,
        channel_bias: 0.4,
        same_row_bias: 0.15,
        hot_frac: 0.30,
        hot_bytes: 256 << 10,
        working_set: 128 << 20,
        write_frac: 0.05,
        compute_per_mem: 18,
        burst_len: 4,
        target_util: 0.9,
        mem_insns_per_warp: 28,
        irregular: true,
    },
    BenchProfile {
        name: "PVC",
        suite: "MARS",
        divergent_frac: 0.60,
        clusters_mean: 7.0,
        channel_bias: 0.4,
        same_row_bias: 0.14,
        hot_frac: 0.20,
        hot_bytes: 256 << 10,
        working_set: 160 << 20,
        write_frac: 0.26,
        compute_per_mem: 15,
        burst_len: 5,
        target_util: 0.88,
        mem_insns_per_warp: 30,
        irregular: true,
    },
    BenchProfile {
        name: "SS",
        suite: "MARS",
        divergent_frac: 0.52,
        clusters_mean: 4.0,
        channel_bias: 0.6,
        same_row_bias: 0.22,
        hot_frac: 0.28,
        hot_bytes: 512 << 10,
        working_set: 64 << 20,
        write_frac: 0.40,
        compute_per_mem: 12,
        burst_len: 6,
        target_util: 0.85,
        mem_insns_per_warp: 32,
        irregular: true,
    },
    BenchProfile {
        name: "sp",
        suite: "LonestarGPU",
        divergent_frac: 0.78,
        clusters_mean: 10.0,
        channel_bias: 0.25,
        same_row_bias: 0.12,
        hot_frac: 0.15,
        hot_bytes: 256 << 10,
        working_set: 224 << 20,
        write_frac: 0.07,
        compute_per_mem: 20,
        burst_len: 4,
        target_util: 0.92,
        mem_insns_per_warp: 28,
        irregular: true,
    },
    BenchProfile {
        name: "bh",
        suite: "LonestarGPU",
        divergent_frac: 0.55,
        clusters_mean: 6.0,
        channel_bias: 0.45,
        same_row_bias: 0.18,
        hot_frac: 0.38,
        hot_bytes: 1 << 20,
        working_set: 96 << 20,
        write_frac: 0.04,
        compute_per_mem: 30,
        burst_len: 3,
        target_util: 0.8,
        mem_insns_per_warp: 30,
        irregular: true,
    },
    BenchProfile {
        name: "sssp",
        suite: "LonestarGPU",
        divergent_frac: 0.68,
        clusters_mean: 8.0,
        channel_bias: 0.28,
        same_row_bias: 0.15,
        hot_frac: 0.20,
        hot_bytes: 512 << 10,
        working_set: 192 << 20,
        write_frac: 0.11,
        compute_per_mem: 15,
        burst_len: 4,
        target_util: 0.9,
        mem_insns_per_warp: 30,
        irregular: true,
    },
    BenchProfile {
        name: "spmv",
        suite: "Parboil",
        divergent_frac: 0.70,
        clusters_mean: 9.0,
        channel_bias: 0.3,
        same_row_bias: 0.19,
        hot_frac: 0.18,
        hot_bytes: 256 << 10,
        working_set: 192 << 20,
        write_frac: 0.03,
        compute_per_mem: 12,
        burst_len: 4,
        target_util: 0.95,
        mem_insns_per_warp: 30,
        irregular: true,
    },
    BenchProfile {
        name: "sad",
        suite: "Parboil",
        divergent_frac: 0.42,
        clusters_mean: 3.0,
        channel_bias: 0.65,
        same_row_bias: 0.29,
        hot_frac: 0.30,
        hot_bytes: 512 << 10,
        working_set: 48 << 20,
        write_frac: 0.36,
        compute_per_mem: 12,
        burst_len: 6,
        target_util: 0.88,
        mem_insns_per_warp: 34,
        irregular: true,
    },
];

/// The six regular, bandwidth-sensitive benchmarks of Section VI-A.
pub const REGULAR: &[BenchProfile] = &[
    BenchProfile {
        name: "streamcluster",
        suite: "Rodinia",
        divergent_frac: 0.02,
        clusters_mean: 2.0,
        channel_bias: 0.5,
        same_row_bias: 0.47,
        hot_frac: 0.05,
        hot_bytes: 256 << 10,
        working_set: 128 << 20,
        write_frac: 0.10,
        compute_per_mem: 8,
        burst_len: 8,
        target_util: 0.85,
        mem_insns_per_warp: 36,
        irregular: false,
    },
    BenchProfile {
        name: "srad2",
        suite: "Rodinia",
        divergent_frac: 0.04,
        clusters_mean: 2.0,
        channel_bias: 0.5,
        same_row_bias: 0.47,
        hot_frac: 0.18,
        hot_bytes: 256 << 10,
        working_set: 96 << 20,
        write_frac: 0.28,
        compute_per_mem: 10,
        burst_len: 8,
        target_util: 0.85,
        mem_insns_per_warp: 36,
        irregular: false,
    },
    BenchProfile {
        name: "bp",
        suite: "Rodinia",
        divergent_frac: 0.03,
        clusters_mean: 2.0,
        channel_bias: 0.5,
        same_row_bias: 0.47,
        hot_frac: 0.30,
        hot_bytes: 512 << 10,
        working_set: 64 << 20,
        write_frac: 0.22,
        compute_per_mem: 10,
        burst_len: 8,
        target_util: 0.8,
        mem_insns_per_warp: 36,
        irregular: false,
    },
    BenchProfile {
        name: "hotspot",
        suite: "Rodinia",
        divergent_frac: 0.02,
        clusters_mean: 2.0,
        channel_bias: 0.5,
        same_row_bias: 0.5,
        hot_frac: 0.28,
        hot_bytes: 512 << 10,
        working_set: 64 << 20,
        write_frac: 0.20,
        compute_per_mem: 14,
        burst_len: 8,
        target_util: 0.75,
        mem_insns_per_warp: 34,
        irregular: false,
    },
    BenchProfile {
        name: "InvertedIndex",
        suite: "MARS",
        divergent_frac: 0.06,
        clusters_mean: 2.0,
        channel_bias: 0.5,
        same_row_bias: 0.44,
        hot_frac: 0.15,
        hot_bytes: 256 << 10,
        working_set: 160 << 20,
        write_frac: 0.18,
        compute_per_mem: 8,
        burst_len: 8,
        target_util: 0.85,
        mem_insns_per_warp: 36,
        irregular: false,
    },
    BenchProfile {
        name: "PageViewRank",
        suite: "MARS",
        divergent_frac: 0.05,
        clusters_mean: 2.0,
        channel_bias: 0.5,
        same_row_bias: 0.44,
        hot_frac: 0.15,
        hot_bytes: 256 << 10,
        working_set: 160 << 20,
        write_frac: 0.12,
        compute_per_mem: 9,
        burst_len: 8,
        target_util: 0.85,
        mem_insns_per_warp: 36,
        irregular: false,
    },
];

/// Look up a profile by name across both suites.
pub fn find(name: &str) -> Option<&'static BenchProfile> {
    IRREGULAR
        .iter()
        .chain(REGULAR.iter())
        .find(|p| p.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_irregular_six_regular() {
        assert_eq!(IRREGULAR.len(), 11);
        assert_eq!(REGULAR.len(), 6);
    }

    #[test]
    fn names_match_table_iii() {
        let names: Vec<&str> = IRREGULAR.iter().map(|p| p.name).collect();
        for expected in [
            "bfs", "cfd", "nw", "kmeans", "PVC", "SS", "sp", "bh", "sssp", "spmv", "sad",
        ] {
            assert!(names.contains(&expected), "{expected} missing");
        }
    }

    #[test]
    fn suite_average_divergence_targets_paper() {
        // Fig. 2: 56% of irregular loads divergent. Our profile average must
        // be within a few points.
        let df: f64 =
            IRREGULAR.iter().map(|p| p.divergent_frac).sum::<f64>() / IRREGULAR.len() as f64;
        assert!((df - 0.56).abs() < 0.1, "divergent frac {df}");
        // Average requests per load within the plausible band around 5.9
        // (cluster means are pre-cache targets; coalescer dedup trims a bit).
        let rpl: f64 = IRREGULAR
            .iter()
            .map(|p| 1.0 * (1.0 - p.divergent_frac) + p.clusters_mean * p.divergent_frac)
            .sum::<f64>()
            / IRREGULAR.len() as f64;
        assert!((3.5..=7.0).contains(&rpl), "requests per load {rpl}");
    }

    #[test]
    fn write_intensive_benchmarks_flagged() {
        for n in ["nw", "SS", "sad"] {
            assert!(
                find(n).unwrap().write_frac >= 0.3,
                "{n} should be write-heavy"
            );
        }
        assert!(find("spmv").unwrap().write_frac < 0.1);
    }

    #[test]
    fn regular_profiles_coalesce() {
        for p in REGULAR {
            assert!(p.divergent_frac < 0.1, "{}", p.name);
            assert!(!p.irregular);
        }
    }

    #[test]
    fn find_is_case_insensitive() {
        assert!(find("BFS").is_some());
        assert!(find("pvc").is_some());
        assert!(find("nope").is_none());
    }
}
