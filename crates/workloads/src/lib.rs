//! Synthetic GPGPU workload generators.
//!
//! The paper evaluates eleven irregular benchmarks (Table III: Rodinia,
//! MARS, LonestarGPU, Parboil) and six regular ones (Section VI-A). The
//! original CUDA binaries cannot run here, so each benchmark is modelled by
//! a generator that produces the *memory behaviour* the paper reports for
//! it (DESIGN.md substitution #2):
//!
//! * the fraction of divergent loads and their post-coalescing fan-out
//!   (Fig. 2: 56% divergent, ~5.9 requests per load on average),
//! * intra-warp row locality (~30% of a warp's requests share a DRAM row)
//!   and bank/channel spread (~2 banks, ~2.5 channels per warp; Fig. 3),
//! * write intensity (Fig. 12: high for nw, SS, sad; low for graph codes),
//! * a hot working subset that gives the caches their (poor) hit rates.
//!
//! Profiles ([`profile::BenchProfile`]) hold these targets per benchmark;
//! [`gen`] turns a profile into a [`KernelProgram`] via seeded RNG, and the
//! `calibration` experiment binary asserts the suite's aggregate statistics
//! stay inside the paper's reported ranges.

pub mod gen;
pub mod microbench;
pub mod profile;

pub use gen::{benchmark, benchmark_with_mem, BenchmarkGen, Scale};
pub use microbench::{Microbench, MICROBENCHES};
pub use profile::{BenchProfile, IRREGULAR, REGULAR};
