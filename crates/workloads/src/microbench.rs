//! Pointer-chase calibration microbenchmarks (`mb_*`).
//!
//! Unlike the Table III profiles, which *statistically* reproduce a
//! benchmark's memory behaviour, these kernels are constructed so each load
//! lands in one known DRAM regime. Every load in this module is dependent —
//! the SIMT core model blocks a warp on its outstanding load — so a chase of
//! `n` loads measures `n` genuinely serialised round trips, exactly like the
//! dependent-`LDG` chains GPU latency microbenchmarks use in hardware.
//!
//! The idle-machine kernels put work on a single warp (everything else in
//! the grid is an empty program, `Done` from construction) so every access
//! sees an unloaded memory system and its latency can be checked *exactly*
//! against [`ldsim_types::analytic::AnalyticLatency`]:
//!
//! | kernel        | each measured load                       | pins        |
//! |---------------|------------------------------------------|-------------|
//! | `mb_serial`   | broadcast chase, fresh closed bank       | tRCD        |
//! | `mb_rowhit`   | second column of a just-opened row       | tCAS        |
//! | `mb_rowmiss`  | second row of a just-opened bank         | tRP         |
//! | `mb_conflict` | 8 lanes on 8 rows of one bank (gap)      | tRC         |
//! | `mb_l2hit`    | revisit of a line another SM primed      | xbar        |
//! | `mb_bypass`   | same shape, run with `l2_bypass` on      | bypass path |
//!
//! `mb_broadcast` (all warps, per-warp broadcast chase) and `mb_random`
//! (all warps, 32 random lines per load) are the *loaded* counterparts: no
//! exact expectation exists, but their p50/p99 must land in bands derived
//! from the same arithmetic.
//!
//! Addresses are found by deterministic search over the real
//! [`AddressMapper`] (decode-and-filter), never by assuming the hash — so
//! the kernels survive address-mapping changes as long as the mapper is
//! honest about them.

use crate::gen::Scale;
use crate::profile::BenchProfile;
use ldsim_types::addr::AddressMapper;
use ldsim_types::kernel::{Instruction, KernelProgram, WarpProgram};
use ldsim_util::rng::StdRng;

const LINE: u64 = 128;
/// Working set for the loaded (random/broadcast) kernels.
const LOADED_WS: u64 = 64 << 20;

type Build = fn(&AddressMapper, Scale, u64) -> Vec<Vec<WarpProgram>>;

/// One calibration microbenchmark: a placeholder profile (so the rest of
/// the stack can treat it like any benchmark) plus its kernel builder.
#[derive(Debug)]
pub struct Microbench {
    pub profile: BenchProfile,
    build: Build,
}

/// Placeholder profile for a microbenchmark. Only `name` (dispatch,
/// cache keys, JSONL rows) and the descriptive stats fields matter; the
/// generator below never consults the calibration targets. Kept out of
/// [`crate::profile::IRREGULAR`]/[`REGULAR`](crate::profile::REGULAR) so
/// the Table III suite statistics are untouched.
const fn mb_profile(name: &'static str, divergent_frac: f64, clusters_mean: f64) -> BenchProfile {
    BenchProfile {
        name,
        suite: "microbench",
        divergent_frac,
        clusters_mean,
        same_row_bias: 0.0,
        channel_bias: 0.0,
        hot_frac: 0.0,
        hot_bytes: 1 << 20,
        working_set: LOADED_WS,
        write_frac: 0.0,
        compute_per_mem: 0,
        burst_len: 1,
        target_util: 0.1,
        mem_insns_per_warp: 32,
        irregular: false,
    }
}

/// The calibration microbenchmark registry.
pub static MICROBENCHES: [Microbench; 8] = [
    Microbench {
        profile: mb_profile("mb_serial", 0.0, 1.0),
        build: build_serial,
    },
    Microbench {
        profile: mb_profile("mb_rowhit", 0.0, 1.0),
        build: build_rowhit,
    },
    Microbench {
        profile: mb_profile("mb_rowmiss", 0.0, 1.0),
        build: build_rowmiss,
    },
    Microbench {
        profile: mb_profile("mb_conflict", 1.0, 8.0),
        build: build_conflict,
    },
    Microbench {
        profile: mb_profile("mb_broadcast", 0.0, 1.0),
        build: build_broadcast,
    },
    Microbench {
        profile: mb_profile("mb_random", 1.0, 32.0),
        build: build_random,
    },
    Microbench {
        profile: mb_profile("mb_l2hit", 0.0, 1.0),
        build: build_revisit,
    },
    Microbench {
        profile: mb_profile("mb_bypass", 0.0, 1.0),
        build: build_revisit,
    },
];

/// Look up a microbenchmark by name (case-insensitive, like the profile
/// registry).
pub fn find(name: &str) -> Option<&'static Microbench> {
    MICROBENCHES
        .iter()
        .find(|m| m.profile.name.eq_ignore_ascii_case(name))
}

/// Generate the kernel grid for `mb` at the given scale and seed.
pub fn generate(mb: &Microbench, mapper: &AddressMapper, scale: Scale, seed: u64) -> KernelProgram {
    KernelProgram {
        name: mb.profile.name.to_string(),
        programs: (mb.build)(mapper, scale, seed),
    }
}

// ---------------------------------------------------------------------------
// Address search: deterministic decode-and-filter over the real mapper.

/// First line address for each of `n` distinct (channel, bank) pairs, in
/// scan order. Every returned line is on a bank no other returned line
/// touches, so a serial chase over them always finds its bank closed.
fn lines_on_fresh_banks(mapper: &AddressMapper, n: usize) -> Vec<u64> {
    let total = mapper.num_channels() * mapper.num_banks();
    assert!(n <= total, "asked for {n} fresh banks, machine has {total}");
    let mut seen: Vec<(u8, u8)> = Vec::with_capacity(n);
    let mut lines = Vec::with_capacity(n);
    let mut l = 0u64;
    while lines.len() < n {
        let d = mapper.decode(l * LINE);
        let key = (d.channel.0, d.bank.0);
        if !seen.contains(&key) {
            seen.push(key);
            lines.push(l);
        }
        l += 1;
        assert!(l < 1 << 22, "bank search did not converge");
    }
    lines
}

/// `banks` groups of `rows` line addresses: within a group all lines share
/// one (channel, bank) and each sits in a different row; no two groups
/// share a bank. Scan order makes the result deterministic.
fn bank_row_groups(mapper: &AddressMapper, banks: usize, rows: usize) -> Vec<Vec<u64>> {
    let mut keys: Vec<(u8, u8)> = Vec::new();
    let mut groups: Vec<Vec<(u32, u64)>> = Vec::new(); // (row, line)
    let mut complete = 0usize;
    let mut l = 0u64;
    while complete < banks {
        let d = mapper.decode(l * LINE);
        let key = (d.channel.0, d.bank.0);
        let gi = match keys.iter().position(|&k| k == key) {
            Some(i) => i,
            None => {
                keys.push(key);
                groups.push(Vec::with_capacity(rows));
                groups.len() - 1
            }
        };
        let g = &mut groups[gi];
        if g.len() < rows && !g.iter().any(|&(r, _)| r == d.row) {
            g.push((d.row, l));
            if g.len() == rows {
                complete += 1;
            }
        }
        l += 1;
        assert!(l < 1 << 24, "row search did not converge");
    }
    groups
        .into_iter()
        .filter(|g| g.len() == rows)
        .take(banks)
        .map(|g| g.into_iter().map(|(_, line)| line).collect())
        .collect()
}

/// Another line of the same (channel, bank, row) as `line`, found via the
/// mapper's row enumeration.
fn row_buddy(mapper: &AddressMapper, line: u64) -> u64 {
    mapper
        .same_row_lines(line * LINE)
        .into_iter()
        .map(|byte| byte / LINE)
        .find(|&b| b != line)
        .expect("a 2 KiB row holds more than one 128 B line")
}

// ---------------------------------------------------------------------------
// Kernel builders.

/// A dependent broadcast chase: all 32 lanes load the same address, the
/// warp blocks, then moves to the next line.
fn chase(lines: &[u64]) -> WarpProgram {
    WarpProgram::new(
        lines
            .iter()
            .map(|&l| Instruction::load([l * LINE; 32]))
            .collect(),
    )
}

/// Grid with work only on (SM 0, warp 0); every other slot is an empty
/// program, `Done` from construction, so the machine is otherwise idle.
fn single_warp(scale: Scale, prog: WarpProgram) -> Vec<Vec<WarpProgram>> {
    sparse_grid(scale, vec![((0, 0), prog)])
}

fn sparse_grid(
    scale: Scale,
    mut work: Vec<((usize, usize), WarpProgram)>,
) -> Vec<Vec<WarpProgram>> {
    (0..scale.num_sms())
        .map(|sm| {
            (0..scale.warps_per_sm())
                .map(
                    |warp| match work.iter().position(|((s, w), _)| (*s, *w) == (sm, warp)) {
                        Some(i) => work.swap_remove(i).1,
                        None => WarpProgram::new(Vec::new()),
                    },
                )
                .collect()
        })
        .collect()
}

/// Per-warp seed, FNV-1a over (name, seed, sm, warp) like the profile
/// generators use — order-independent and stable.
fn warp_seed(name: &str, seed: u64, sm: usize, warp: usize) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u64| {
        h ^= b;
        h = h.wrapping_mul(0x1_0000_01b3);
    };
    for byte in name.bytes() {
        eat(byte as u64);
    }
    eat(seed);
    eat(sm as u64);
    eat(warp as u64);
    h
}

/// Serial chase over fresh banks: every load is an idle closed-bank access
/// (tRCD + tCAS), the baseline rung of the ladder.
fn build_serial(m: &AddressMapper, scale: Scale, _seed: u64) -> Vec<Vec<WarpProgram>> {
    let n = scale.mem_insns(64).min(90);
    single_warp(scale, chase(&lines_on_fresh_banks(m, n)))
}

/// Open/hit pairs: the first load of a pair opens a fresh bank's row
/// (closed-bank latency), the second reads another column of the *same*
/// row — under the open-page policy an exact row hit (tCAS only).
fn build_rowhit(m: &AddressMapper, scale: Scale, _seed: u64) -> Vec<Vec<WarpProgram>> {
    let pairs = scale.mem_insns(48).min(90);
    let lines: Vec<u64> = lines_on_fresh_banks(m, pairs)
        .into_iter()
        .flat_map(|open| [open, row_buddy(m, open)])
        .collect();
    single_warp(scale, chase(&lines))
}

/// Open/conflict pairs: the second load of each pair targets a *different
/// row* of the bank the first just opened — precharge then activate
/// (tRP + tRCD + tCAS), the row-miss rung.
fn build_rowmiss(m: &AddressMapper, scale: Scale, _seed: u64) -> Vec<Vec<WarpProgram>> {
    let pairs = scale.mem_insns(48).min(90);
    let lines: Vec<u64> = bank_row_groups(m, pairs, 2).into_iter().flatten().collect();
    single_warp(scale, chase(&lines))
}

/// Intra-warp bank conflict: each load's 32 lanes coalesce to 8 lines in 8
/// different rows of one bank, so its DRAM completions must serialise at
/// tRC spacing — first-to-last gap exactly 7 x tRC on an idle machine.
fn build_conflict(m: &AddressMapper, scale: Scale, _seed: u64) -> Vec<Vec<WarpProgram>> {
    let loads = scale.mem_insns(16);
    let insns = bank_row_groups(m, loads, 8)
        .into_iter()
        .map(|rows| {
            let mut addrs = [0u64; 32];
            for (lane, a) in addrs.iter_mut().enumerate() {
                // Four lanes per line so the coalescer sees 8 clusters.
                *a = rows[lane / 4] * LINE + 4 * (lane % 4) as u64;
            }
            Instruction::load(addrs)
        })
        .collect();
    single_warp(scale, WarpProgram::new(insns))
}

/// Loaded broadcast chase: every warp runs its own dependent broadcast
/// chain over random distinct lines. Coalesced traffic, full machine —
/// the loaded-latency distribution for convergent loads.
fn build_broadcast(m: &AddressMapper, scale: Scale, seed: u64) -> Vec<Vec<WarpProgram>> {
    let _ = m;
    let n = scale.mem_insns(32);
    (0..scale.num_sms())
        .map(|sm| {
            (0..scale.warps_per_sm())
                .map(|warp| {
                    let mut rng = StdRng::seed_from_u64(warp_seed("mb_broadcast", seed, sm, warp));
                    let mut lines: Vec<u64> = Vec::with_capacity(n);
                    while lines.len() < n {
                        let l = rng.gen_range(0..LOADED_WS / LINE);
                        if !lines.contains(&l) {
                            lines.push(l);
                        }
                    }
                    chase(&lines)
                })
                .collect()
        })
        .collect()
}

/// Loaded random chase: every warp's loads scatter all 32 lanes to random
/// lines — maximal divergence, the paper's worst-case regime.
fn build_random(m: &AddressMapper, scale: Scale, seed: u64) -> Vec<Vec<WarpProgram>> {
    let _ = m;
    let n = scale.mem_insns(16);
    (0..scale.num_sms())
        .map(|sm| {
            (0..scale.warps_per_sm())
                .map(|warp| {
                    let mut rng = StdRng::seed_from_u64(warp_seed("mb_random", seed, sm, warp));
                    let insns = (0..n)
                        .map(|_| {
                            let mut addrs = [0u64; 32];
                            for a in addrs.iter_mut() {
                                *a = rng.gen_range(0..LOADED_WS / LINE) * LINE;
                            }
                            Instruction::load(addrs)
                        })
                        .collect();
                    WarpProgram::new(insns)
                })
                .collect()
        })
        .collect()
}

/// Prime/probe revisit: SM 0's warp chases a line list (filling the L2);
/// SM 1's warp waits out the primer, then chases the *same* list. With the
/// L2 on, every probe is an exact L2 hit (crossbar-only latency). With
/// `l2_bypass` set, probes go to DRAM and find the primed rows still open
/// — exact row hits — which is how the validate bin proves the bypass knob
/// actually bypasses.
fn build_revisit(m: &AddressMapper, scale: Scale, _seed: u64) -> Vec<Vec<WarpProgram>> {
    assert!(scale.num_sms() >= 2, "revisit kernels need two SMs");
    let p = scale.mem_insns(24);
    let lines = lines_on_fresh_banks(m, p);
    let mut probe = chase(&lines).insns;
    // Generous bound on the primer's runtime: p dependent idle round trips
    // are a few hundred cycles each.
    let delay = p as u32 * 1000 + 2000;
    probe.insert(0, Instruction::Delay(delay));
    // Delay(n) retires n instruction-equivalents, so the runner's 70%
    // instruction budget would otherwise trip the moment the delay retires
    // — before a single probe load. A compute tail after the probes puts
    // every real load inside the first 70% of the kernel's instructions;
    // the budget then cuts the tail, never the measurement.
    probe.push(Instruction::Compute(delay + 2 * p as u32));
    sparse_grid(
        scale,
        vec![((0, 0), chase(&lines)), ((1, 0), WarpProgram::new(probe))],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::benchmark;
    use ldsim_types::config::MemConfig;

    fn mapper() -> AddressMapper {
        AddressMapper::new(&MemConfig::default(), 128)
    }

    fn loads_of(prog: &WarpProgram) -> Vec<&Instruction> {
        prog.insns
            .iter()
            .filter(|i| matches!(i, Instruction::Load { .. }))
            .collect()
    }

    fn only_line(i: &Instruction) -> u64 {
        match i {
            Instruction::Load { addrs, .. } => {
                let lines: Vec<u64> = addrs.iter().map(|a| a / LINE).collect();
                assert!(lines.iter().all(|&l| l == lines[0]), "not a broadcast load");
                lines[0]
            }
            _ => panic!("not a load"),
        }
    }

    #[test]
    fn dispatches_through_the_benchmark_registry() {
        let k = benchmark("mb_serial", Scale::Tiny, 1).generate();
        assert_eq!(k.name, "mb_serial");
        assert_eq!(k.programs.len(), 2);
        assert_eq!(k.programs[0].len(), 4);
        // Only (0,0) carries work; the rest of the grid is empty.
        assert!(k.programs[0][0].num_loads() > 0);
        assert!(k.programs[0][1].insns.is_empty());
        assert!(k.programs[1][0].insns.is_empty());
    }

    #[test]
    fn microbench_names_do_not_shadow_profiles() {
        for mb in &MICROBENCHES {
            assert!(
                crate::profile::find(mb.profile.name).is_none(),
                "{} collides with a Table III profile",
                mb.profile.name
            );
        }
    }

    #[test]
    fn serial_chase_touches_each_bank_once() {
        let m = mapper();
        let k = benchmark("mb_serial", Scale::Small, 1).generate();
        let loads = loads_of(&k.programs[0][0]);
        assert_eq!(loads.len(), 32);
        let mut banks: Vec<(u8, u8)> = Vec::new();
        for l in &loads {
            let d = m.decode(only_line(l) * LINE);
            let key = (d.channel.0, d.bank.0);
            assert!(!banks.contains(&key), "bank revisited: {key:?}");
            banks.push(key);
        }
    }

    #[test]
    fn rowhit_pairs_share_a_row_rowmiss_pairs_do_not() {
        let m = mapper();
        let hit = benchmark("mb_rowhit", Scale::Tiny, 1).generate();
        for pair in loads_of(&hit.programs[0][0]).chunks(2) {
            let a = m.decode(only_line(pair[0]) * LINE);
            let b = m.decode(only_line(pair[1]) * LINE);
            assert!(a.same_row(&b), "rowhit pair split across rows");
            assert_ne!(a.col, b.col, "rowhit pair must change column");
        }
        let miss = benchmark("mb_rowmiss", Scale::Tiny, 1).generate();
        for pair in loads_of(&miss.programs[0][0]).chunks(2) {
            let a = m.decode(only_line(pair[0]) * LINE);
            let b = m.decode(only_line(pair[1]) * LINE);
            assert_eq!((a.channel, a.bank), (b.channel, b.bank));
            assert_ne!(a.row, b.row, "rowmiss pair must change rows");
        }
    }

    #[test]
    fn conflict_loads_hit_eight_rows_of_one_bank() {
        let m = mapper();
        let k = benchmark("mb_conflict", Scale::Tiny, 1).generate();
        let loads = loads_of(&k.programs[0][0]);
        assert_eq!(loads.len(), 4);
        for l in loads {
            let Instruction::Load { addrs, .. } = l else {
                unreachable!()
            };
            let mut lines: Vec<u64> = addrs.iter().map(|a| a / LINE).collect();
            lines.sort_unstable();
            lines.dedup();
            assert_eq!(lines.len(), 8, "must coalesce to 8 lines");
            let ds: Vec<_> = lines.iter().map(|&l| m.decode(l * LINE)).collect();
            let mut rows: Vec<u32> = ds.iter().map(|d| d.row).collect();
            rows.sort_unstable();
            rows.dedup();
            assert_eq!(rows.len(), 8, "8 distinct rows");
            assert!(
                ds.iter()
                    .all(|d| (d.channel, d.bank) == (ds[0].channel, ds[0].bank)),
                "conflict lines must share one bank"
            );
        }
    }

    #[test]
    fn revisit_probe_replays_the_primer_lines_after_a_delay() {
        let k = benchmark("mb_l2hit", Scale::Tiny, 1).generate();
        let primer: Vec<u64> = loads_of(&k.programs[0][0])
            .iter()
            .map(|l| only_line(l))
            .collect();
        let probe_prog = &k.programs[1][0];
        assert!(matches!(probe_prog.insns[0], Instruction::Delay(n) if n >= 1000));
        let probe: Vec<u64> = loads_of(probe_prog).iter().map(|l| only_line(l)).collect();
        assert_eq!(primer, probe, "probe must revisit the primed lines");
        // The compute tail must keep every real load inside the runner's
        // 70% instruction budget — without it the budget trips the moment
        // the delay retires, before a single probe load (see build_revisit).
        let tail = match probe_prog.insns.last() {
            Some(Instruction::Compute(n)) => *n as u64,
            other => panic!("probe must end in a compute tail, got {other:?}"),
        };
        assert!(
            k.total_instructions() - tail <= k.total_instructions() * 7 / 10,
            "probe loads must retire inside the instruction budget"
        );
        // mb_bypass shares the kernel shape; only the config knob differs.
        let b = benchmark("mb_bypass", Scale::Tiny, 1).generate();
        assert_eq!(b.programs[0][0], k.programs[0][0]);
    }

    #[test]
    fn loaded_kernels_fill_the_grid_and_respond_to_seeds() {
        let a = benchmark("mb_random", Scale::Tiny, 1).generate();
        assert!(a
            .programs
            .iter()
            .all(|sm| sm.iter().all(|w| w.num_loads() > 0)));
        let b = benchmark("mb_random", Scale::Tiny, 1).generate();
        assert_eq!(a.programs, b.programs, "same seed, same kernel");
        let c = benchmark("mb_random", Scale::Tiny, 2).generate();
        assert_ne!(a.programs, c.programs, "seed must matter");
        let bc = benchmark("mb_broadcast", Scale::Tiny, 1).generate();
        for sm in &bc.programs {
            for w in sm {
                let mut lines: Vec<u64> = loads_of(w).iter().map(|l| only_line(l)).collect();
                let n = lines.len();
                lines.sort_unstable();
                lines.dedup();
                assert_eq!(lines.len(), n, "broadcast chase lines must be distinct");
            }
        }
    }
}
